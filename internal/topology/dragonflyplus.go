package topology

import "fmt"

// DragonflyPlus is the Dragonfly+ topology (Shpiner et al., and the
// low-diameter family of arXiv 2306.13042): each group is a two-level
// bipartite fat tree of L leaf routers and S spine routers instead of a
// fully connected clique. Terminals attach to leaves only; every leaf
// connects to every spine of its group; global channels emanate from
// the spines, wired group-to-group by the same palmtree-plus-circulant
// plan as the canonical dragonfly (gwire). Minimal paths are up to
// leaf→spine/global/spine→leaf — at most two local hops per group —
// which keeps the machine diameter-5 at router level while scaling the
// group's effective radix with S·H independently of the leaf count.
//
// In-group router indices: leaves are [0, L), spines [L, L+S). Port
// layout:
//
//	leaf:  ports [0, P)     terminal ports
//	       ports [P, P+S)   up links; port P+j reaches spine j
//	spine: ports [0, L)     down links; port f reaches leaf f
//	       ports [L, L+H)   global ports; spine j carries the group's
//	                        global-channel slots [j*H, (j+1)*H)
//
// Intra-group routing is up/down (leaf→spine→leaf via the
// deterministic spine (f+t) mod S), which is acyclic, so the canonical
// 3-VC ladder stays deadlock-free: transit traffic only descends then
// ascends within a group on one VC level, destination traffic only
// ascends then descends on the final level.
type DragonflyPlus struct {
	*Graph

	// P is the number of terminals per leaf router.
	P int
	// L and S are the leaf and spine routers per group.
	L, S int
	// H is the number of global channels per spine router.
	H int
	// G is the number of groups; at most S*H+1 can be connected.
	G int

	wire gwire
}

// NewDragonflyPlus builds a Dragonfly+ with the given parameters. If
// groups is zero the maximal configuration g = s*h+1 is used; groups=1
// builds the degenerate single-group machine with no global channels.
func NewDragonflyPlus(p, leaves, spines, h, groups int) (*DragonflyPlus, error) {
	if p < 1 || leaves < 1 || spines < 1 || h < 1 {
		return nil, fmt.Errorf("topology: dragonfly+ parameters must be positive (p=%d leaves=%d spines=%d h=%d)", p, leaves, spines, h)
	}
	maxGroups := spines*h + 1
	if groups == 0 {
		groups = maxGroups
	}
	if groups < 1 {
		return nil, fmt.Errorf("topology: dragonfly+ needs at least 1 group (got %d)", groups)
	}
	if groups > maxGroups {
		return nil, fmt.Errorf("topology: dragonfly+ with spines=%d h=%d supports at most %d groups (got %d)", spines, h, maxGroups, groups)
	}
	var wire gwire
	if groups > 1 {
		var err error
		wire, err = newGwire(groups, spines*h)
		if err != nil {
			return nil, err
		}
	}
	d := &DragonflyPlus{P: p, L: leaves, S: spines, H: h, G: groups, wire: wire}

	rpg := leaves + spines
	routers := rpg * groups
	g := NewGraph(routers, p*leaves*groups)
	for r := 0; r < routers; r++ {
		grp, idx := r/rpg, r%rpg
		if idx < leaves {
			// Leaf: terminals, then one up link per spine.
			ports := make([]Port, 0, p+spines)
			for t := 0; t < p; t++ {
				term := (grp*leaves+idx)*p + t
				ports = append(ports, Port{Class: ClassTerminal, PeerRouter: -1, PeerPort: -1, Terminal: term})
				g.termRouter[term] = r
				g.termPort[term] = t
			}
			for j := 0; j < spines; j++ {
				ports = append(ports, Port{
					Class:      ClassLocal,
					PeerRouter: grp*rpg + leaves + j,
					PeerPort:   idx, // spine j's down port to leaf idx
					Terminal:   -1,
				})
			}
			g.ports[r] = ports
			continue
		}
		// Spine: one down link per leaf, then the global slots.
		s := idx - leaves
		ports := make([]Port, 0, leaves+h)
		for f := 0; f < leaves; f++ {
			ports = append(ports, Port{
				Class:      ClassLocal,
				PeerRouter: grp*rpg + f,
				PeerPort:   p + s, // leaf f's up port to spine s
				Terminal:   -1,
			})
		}
		for jg := 0; groups > 1 && jg < h; jg++ {
			c := s*h + jg
			dst, back := wire.peer(grp, c)
			ports = append(ports, Port{
				Class:      ClassGlobal,
				PeerRouter: dst*rpg + leaves + back/h,
				PeerPort:   leaves + back%h,
				Terminal:   -1,
			})
		}
		g.ports[r] = ports
	}
	d.Graph = g
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("topology: dragonfly+ construction bug: %w", err)
	}
	return d, nil
}

// Groups returns the group count.
func (d *DragonflyPlus) Groups() int { return d.G }

// Nodes returns the terminal count N = g·L·p.
func (d *DragonflyPlus) Nodes() int { return d.G * d.L * d.P }

// RoutersPerGroup returns L+S.
func (d *DragonflyPlus) RoutersPerGroup() int { return d.L + d.S }

// TerminalsPerGroup returns L·p.
func (d *DragonflyPlus) TerminalsPerGroup() int { return d.L * d.P }

// RouterGroup returns the group of router r.
func (d *DragonflyPlus) RouterGroup(r int) int { return r / (d.L + d.S) }

// RouterIndex returns the in-group index of router r (leaves first).
func (d *DragonflyPlus) RouterIndex(r int) int { return r % (d.L + d.S) }

// GroupRouter returns the router with in-group index idx of group grp.
func (d *DragonflyPlus) GroupRouter(grp, idx int) int { return grp*(d.L+d.S) + idx }

// TerminalGroup returns the group of terminal t.
func (d *DragonflyPlus) TerminalGroup(t int) int { return d.RouterGroup(d.TerminalRouter(t)) }

// RouterRadix returns the largest router radix in the machine
// (max(p+S, L+h); leaves and spines differ). A single-group machine
// has no global ports, so its spines stop at L.
func (d *DragonflyPlus) RouterRadix() int {
	leaf, spine := d.P+d.S, d.L+d.H
	if d.G == 1 {
		spine = d.L
	}
	if leaf > spine {
		return leaf
	}
	return spine
}

// EffectiveRadix returns the group's virtual-router radix: L·p terminal
// ports plus S·h global ports.
func (d *DragonflyPlus) EffectiveRadix() int { return d.L*d.P + d.S*d.H }

// LocalRoute returns the next-hop local port from in-group index from
// towards to: direct on the bipartite leaf↔spine links, via the
// deterministic spine (from+to) mod S for leaf→leaf, and via the
// deterministic leaf (from+to) mod L for spine→spine.
func (d *DragonflyPlus) LocalRoute(from, to int) int {
	if from == to {
		return -1
	}
	if from < d.L { // at a leaf: every exit ascends to a spine
		spine := to - d.L
		if to < d.L {
			spine = (from + to) % d.S
		}
		return d.P + spine
	}
	// At a spine: every exit descends to a leaf.
	if to < d.L {
		return to
	}
	return ((from - d.L) + (to - d.L)) % d.L
}

// LocalHops returns the intra-group distance: 1 across the bipartition,
// 2 within a side.
func (d *DragonflyPlus) LocalHops(from, to int) int {
	switch {
	case from == to:
		return 0
	case (from < d.L) != (to < d.L):
		return 1
	default:
		return 2
	}
}

// GlobalPort returns the port of global-channel slot c on its owning
// spine (port L+c%H on spine c/H).
func (d *DragonflyPlus) GlobalPort(c int) int { return d.L + c%d.H }

// SlotRouterIndex returns the in-group index of the spine owning slot c.
func (d *DragonflyPlus) SlotRouterIndex(c int) int { return d.L + c/d.H }

// SlotTarget returns the group reached by slot c of group grp.
func (d *DragonflyPlus) SlotTarget(grp, c int) int { return d.wire.target(grp, c) }

// ChannelsBetween returns the global channels connecting two groups.
func (d *DragonflyPlus) ChannelsBetween(ga, gb int) int { return d.wire.between(ga, gb) }

// GlobalSlot returns the m-th slot of grp leading to dst.
func (d *DragonflyPlus) GlobalSlot(grp, dst, m int) int { return d.wire.slotFor(grp, dst, m) }

// GlobalEntryRouter returns the router (a spine) of group dst reached
// via slot c of group grp, or -1 if the slot leads elsewhere.
func (d *DragonflyPlus) GlobalEntryRouter(grp, dst, c int) int {
	tgt, back := d.wire.peer(grp, c)
	if tgt != dst {
		return -1
	}
	return dst*(d.L+d.S) + d.L + back/d.H
}

// MinVCs returns the virtual channels the routing ladder needs: 3. The
// up/down intra-group routes keep each VC level's local dependencies
// acyclic (transit descends then ascends, destination traffic ascends
// then descends on its own level), so Dragonfly+ needs no extra VCs
// over the canonical dragonfly.
func (d *DragonflyPlus) MinVCs() int { return 3 }

// Describe returns the analytic structure descriptor.
func (d *DragonflyPlus) Describe() Descriptor {
	global := 0
	if d.G > 1 {
		global = d.G * d.S * d.H / 2
	}
	return Descriptor{
		Family:            "dragonflyplus",
		Params:            map[string]int{"p": d.P, "leaves": d.L, "spines": d.S, "h": d.H, "g": d.G},
		Groups:            d.G,
		RoutersPerGroup:   d.L + d.S,
		TerminalsPerGroup: d.L * d.P,
		Routers:           (d.L + d.S) * d.G,
		Terminals:         d.Nodes(),
		RouterRadix:       d.RouterRadix(),
		TerminalChannels:  d.Nodes(),
		LocalChannels:     d.G * d.L * d.S,
		GlobalChannels:    global,
	}
}

// String describes the configuration.
func (d *DragonflyPlus) String() string {
	return fmt.Sprintf("dragonfly+(p=%d leaves=%d spines=%d h=%d g=%d N=%d k=%d k'=%d)",
		d.P, d.L, d.S, d.H, d.G, d.Nodes(), d.RouterRadix(), d.EffectiveRadix())
}
