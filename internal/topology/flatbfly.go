package topology

import "fmt"

// FlattenedButterfly is the k-ary n-flat of Kim, Dally and Abts (ISCA
// 2007), the topology the dragonfly extends and is benchmarked against in
// Section 5. Routers sit at the points of an n-dimensional grid with Size
// routers per dimension and are fully connected along every dimension;
// each router concentrates Conc terminals.
//
// Dimension 0 channels are classed local (they stay inside a cabinet in
// the paper's packaging, Figure 18) and higher-dimension channels are
// classed global. The same type doubles as the intra-group network of the
// dragonfly variant in Figure 6(b), where a group is itself a small
// flattened butterfly.
type FlattenedButterfly struct {
	*Graph

	// Conc is the concentration: terminals per router.
	Conc int
	// Dims holds the router count per dimension (the paper uses equal
	// dimensions, but the constructor accepts any shape).
	Dims []int
}

// NewFlattenedButterfly builds a flattened butterfly with the given
// concentration and dimension sizes.
func NewFlattenedButterfly(conc int, dims ...int) (*FlattenedButterfly, error) {
	if conc < 1 {
		return nil, fmt.Errorf("topology: flattened butterfly concentration must be positive (got %d)", conc)
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("topology: flattened butterfly needs at least one dimension")
	}
	routers := 1
	for i, s := range dims {
		if s < 2 {
			return nil, fmt.Errorf("topology: flattened butterfly dimension %d must have size >= 2 (got %d)", i, s)
		}
		routers *= s
	}
	f := &FlattenedButterfly{Conc: conc, Dims: append([]int(nil), dims...)}
	g := NewGraph(routers, conc*routers)
	for r := 0; r < routers; r++ {
		for t := 0; t < conc; t++ {
			g.AddTerminal(r*conc+t, r)
		}
	}
	// Fully connect along each dimension, lowest dimension first. The
	// canonical layout (conc terminal ports, then size-1 ports per
	// dimension in increasing dimension order) is fully determined, so
	// the port table is written directly, like the dragonfly's.
	for r := 0; r < routers; r++ {
		coord := f.Coord(r)
		ports := g.ports[r]
		for dim := range dims {
			own := coord[dim]
			for v := 0; v < dims[dim]; v++ {
				if v == own {
					continue
				}
				peer := f.withCoord(coord, dim, v)
				class := ClassGlobal
				if dim == 0 {
					class = ClassLocal
				}
				ports = append(ports, Port{
					Class:      class,
					PeerRouter: peer,
					PeerPort:   f.dimPort(dim, own, v),
					Terminal:   -1,
				})
			}
		}
		g.ports[r] = ports
	}
	f.Graph = g
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("topology: flattened butterfly construction bug: %w", err)
	}
	return f, nil
}

// dimPort returns the port index on the router at coordinate `to` of
// dimension dim for the channel back to the router at coordinate `from`,
// given the canonical layout.
func (f *FlattenedButterfly) dimPort(dim, from, to int) int {
	base := f.Conc
	for d := 0; d < dim; d++ {
		base += f.Dims[d] - 1
	}
	if from < to {
		return base + from
	}
	return base + from - 1
}

// Coord returns the per-dimension coordinates of router r (dimension 0
// varies fastest).
func (f *FlattenedButterfly) Coord(r int) []int {
	c := make([]int, len(f.Dims))
	for i, s := range f.Dims {
		c[i] = r % s
		r /= s
	}
	return c
}

// withCoord returns the router id obtained by replacing coordinate dim of
// coord with v.
func (f *FlattenedButterfly) withCoord(coord []int, dim, v int) int {
	r := 0
	stride := 1
	for i, s := range f.Dims {
		x := coord[i]
		if i == dim {
			x = v
		}
		r += x * stride
		stride *= s
	}
	return r
}

// RouterRadix returns the radix of each router: concentration plus
// (size-1) ports per dimension.
func (f *FlattenedButterfly) RouterRadix() int {
	k := f.Conc
	for _, s := range f.Dims {
		k += s - 1
	}
	return k
}

// Nodes returns the number of terminals.
func (f *FlattenedButterfly) Nodes() int { return f.Graph.Terminals() }

// String describes the configuration.
func (f *FlattenedButterfly) String() string {
	return fmt.Sprintf("flattened-butterfly(c=%d dims=%v N=%d k=%d)", f.Conc, f.Dims, f.Nodes(), f.RouterRadix())
}
