package topology

import (
	"testing"
	"testing/quick"
)

func TestFlattenedButterflyBasic(t *testing.T) {
	// 1-D flattened butterfly of 4 routers with concentration 2: a fully
	// connected quad, 8 terminals, radix 5.
	f, err := NewFlattenedButterfly(2, 4)
	if err != nil {
		t.Fatalf("NewFlattenedButterfly: %v", err)
	}
	if got := f.Nodes(); got != 8 {
		t.Errorf("Nodes() = %d, want 8", got)
	}
	if got := f.RouterRadix(); got != 5 {
		t.Errorf("RouterRadix() = %d, want 5", got)
	}
	term, local, global := f.CountChannels()
	if term != 8 || local != 6 || global != 0 {
		t.Errorf("CountChannels() = (%d,%d,%d), want (8,6,0)", term, local, global)
	}
	diam, err := f.Diameter()
	if err != nil {
		t.Fatalf("Diameter: %v", err)
	}
	if diam != 1 {
		t.Errorf("diameter = %d, want 1", diam)
	}
}

func TestFlattenedButterflyFigure6b(t *testing.T) {
	// Figure 6(b): a 3-D flattened butterfly with p = 2 and dimension
	// size 2 is a 3-cube of routers; used as a dragonfly group it raises
	// the group radix from k' = 16 to k' = 32 using the same k = 7 router.
	f, err := NewFlattenedButterfly(2, 2, 2, 2)
	if err != nil {
		t.Fatalf("NewFlattenedButterfly: %v", err)
	}
	if got := f.Routers(); got != 8 {
		t.Errorf("Routers() = %d, want 8", got)
	}
	if got := f.RouterRadix(); got != 5 {
		t.Errorf("RouterRadix() = %d, want 5 (2 terminals + 3 dims)", got)
	}
	diam, err := f.Diameter()
	if err != nil {
		t.Fatalf("Diameter: %v", err)
	}
	if diam != 3 {
		t.Errorf("diameter = %d, want 3 (one hop per dimension)", diam)
	}
	// Group radix if this were a dragonfly group with h = 2 per router:
	// a(p+h) = 8 * 4 = 32, as the paper states.
	if got := f.Routers() * (f.Conc + 2); got != 32 {
		t.Errorf("virtual radix = %d, want 32", got)
	}
}

func TestFlattenedButterflyValidation(t *testing.T) {
	if _, err := NewFlattenedButterfly(0, 4); err == nil {
		t.Error("concentration 0 accepted")
	}
	if _, err := NewFlattenedButterfly(2); err == nil {
		t.Error("no dimensions accepted")
	}
	if _, err := NewFlattenedButterfly(2, 1); err == nil {
		t.Error("dimension size 1 accepted")
	}
}

func TestFlattenedButterflyProperty(t *testing.T) {
	// Property: any generated flattened butterfly validates, has the
	// analytic channel count, and diameter == number of dimensions.
	f := func(c, d1, d2 uint8) bool {
		conc := 1 + int(c%3)
		s1 := 2 + int(d1%3)
		s2 := 2 + int(d2%3)
		fb, err := NewFlattenedButterfly(conc, s1, s2)
		if err != nil {
			return false
		}
		if fb.Validate() != nil {
			return false
		}
		routers := s1 * s2
		_, local, global := fb.CountChannels()
		wantLocal := routers * (s1 - 1) / 2
		wantGlobal := routers * (s2 - 1) / 2
		if local != wantLocal || global != wantGlobal {
			return false
		}
		diam, err := fb.Diameter()
		return err == nil && diam == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFlattenedButterflyCoordRoundTrip(t *testing.T) {
	f, err := NewFlattenedButterfly(1, 3, 4, 2)
	if err != nil {
		t.Fatalf("NewFlattenedButterfly: %v", err)
	}
	for r := 0; r < f.Routers(); r++ {
		coord := f.Coord(r)
		if got := f.withCoord(coord, 0, coord[0]); got != r {
			t.Fatalf("coord round trip failed for router %d: %v -> %d", r, coord, got)
		}
	}
}

func TestFoldedClosSizing(t *testing.T) {
	cases := []struct {
		n, k       int
		wantLevels int
	}{
		{64, 64, 1},
		{1024, 64, 2},
		{2048, 64, 2},
		{2049, 64, 3},
		{65536, 64, 3},
	}
	for _, c := range cases {
		fc, err := NewFoldedClos(c.n, c.k)
		if err != nil {
			t.Fatalf("NewFoldedClos(%d,%d): %v", c.n, c.k, err)
		}
		if fc.Levels != c.wantLevels {
			t.Errorf("NewFoldedClos(%d,%d).Levels = %d, want %d", c.n, c.k, fc.Levels, c.wantLevels)
		}
		if fc.MaxNodes() < c.n {
			t.Errorf("NewFoldedClos(%d,%d).MaxNodes() = %d < %d", c.n, c.k, fc.MaxNodes(), c.n)
		}
		if fc.Channels() != c.n*(c.wantLevels-1) {
			t.Errorf("Channels() = %d, want %d", fc.Channels(), c.n*(c.wantLevels-1))
		}
	}
	if _, err := NewFoldedClos(100, 3); err == nil {
		t.Error("odd radix accepted")
	}
	if _, err := NewFoldedClos(0, 64); err == nil {
		t.Error("zero terminals accepted")
	}
}

func TestTorus3DSizing(t *testing.T) {
	tor, err := NewTorus3D(4096)
	if err != nil {
		t.Fatalf("NewTorus3D: %v", err)
	}
	if tor.Nodes() < 4096 {
		t.Errorf("Nodes() = %d, want >= 4096", tor.Nodes())
	}
	if tor.Channels() != 3*tor.Nodes() {
		t.Errorf("Channels() = %d, want %d", tor.Channels(), 3*tor.Nodes())
	}
	if tor.Diameter() <= 0 {
		t.Errorf("Diameter() = %d, want positive", tor.Diameter())
	}
	if avg := tor.AverageHops(); avg <= 0 || avg > float64(tor.Diameter()) {
		t.Errorf("AverageHops() = %v out of range (diameter %d)", avg, tor.Diameter())
	}
	if _, err := NewTorus3D(1); err == nil {
		t.Error("tiny torus accepted")
	}
}

func TestAnalyticsFigure1(t *testing.T) {
	// Figure 1: the radix needed for a one-global-hop flat network grows
	// as ~2*sqrt(N); for N = 1M it exceeds 1000.
	if k := FlatNetworkRadix(1000000); k < 1000 || k > 2100 {
		t.Errorf("FlatNetworkRadix(1e6) = %d, want ~2000", k)
	}
	// Round trip: radix for max nodes of k must not exceed k.
	for k := 4; k <= 256; k *= 2 {
		n := FlatNetworkMaxNodes(k)
		if got := FlatNetworkRadix(n); got > k {
			t.Errorf("FlatNetworkRadix(FlatNetworkMaxNodes(%d)) = %d > %d", k, got, k)
		}
	}
}

func TestAnalyticsFigure4(t *testing.T) {
	// Figure 4 / Section 3.1: with radix-64 routers, the balanced
	// dragonfly scales beyond 256K nodes with diameter three.
	if n := BalancedMaxNodes(64); n < 256*1024 {
		t.Errorf("BalancedMaxNodes(64) = %d, want > 256K", n)
	}
	// The paper's example: k = 7 gives h = 2, a = 4, p = 2, N = 72.
	p, a, h := BalancedParams(7)
	if p != 2 || a != 4 || h != 2 {
		t.Errorf("BalancedParams(7) = (%d,%d,%d), want (2,4,2)", p, a, h)
	}
	if n := BalancedMaxNodes(7); n != 72 {
		t.Errorf("BalancedMaxNodes(7) = %d, want 72", n)
	}
	// Monotone in k.
	prev := 0
	for k := 3; k <= 128; k++ {
		n := BalancedMaxNodes(k)
		if n < prev {
			t.Errorf("BalancedMaxNodes not monotone at k=%d: %d < %d", k, n, prev)
		}
		prev = n
	}
}

func TestBalancedRadixForNodes(t *testing.T) {
	for _, n := range []int{100, 1000, 10000, 100000} {
		k := BalancedRadixForNodes(n)
		if BalancedMaxNodes(k) < n {
			t.Errorf("BalancedRadixForNodes(%d) = %d too small", n, k)
		}
		if k > 3 && BalancedMaxNodes(k-1) >= n {
			t.Errorf("BalancedRadixForNodes(%d) = %d not minimal", n, k)
		}
	}
}

func TestGraphValidateCatchesCorruption(t *testing.T) {
	g := NewGraph(2, 2)
	g.AddTerminal(0, 0)
	g.AddTerminal(1, 1)
	g.AddLink(0, 1, ClassLocal)
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	// Corrupt the peer pointer.
	g.ports[0][1].PeerPort = 7
	if err := g.Validate(); err == nil {
		t.Error("corrupted graph accepted")
	}
}

func TestGraphDiameterDisconnected(t *testing.T) {
	g := NewGraph(2, 0)
	if _, err := g.Diameter(); err == nil {
		t.Error("disconnected graph diameter computed without error")
	}
	if _, err := g.AverageHops(); err == nil {
		t.Error("disconnected graph average hops computed without error")
	}
}
