package topology

import "fmt"

// gwire is the inter-group (global-channel) wiring plan shared by the
// dragonfly variants: it assigns each group's S global-channel slots to
// peer groups so that every pair of groups is connected and the wiring
// is symmetric (the channel count from A to B equals B to A).
//
// Slots are assigned in two layers. Every ordered pair first receives
// base = ⌊S/(g-1)⌋ channels: slot c < base*(g-1) of group G targets
// group (G+1+c mod (g-1)) mod g, the classic palmtree arrangement. The
// remaining r = S mod (g-1) slots per group form a circulant graph with
// offsets ±1, ±2, … (plus the antipodal offset g/2 when r is odd and g
// even). A plan with r odd and g odd cannot be symmetric with every
// port used and is rejected.
type gwire struct {
	g     int // groups
	slots int // global-channel slots per group (a*h)
	base  int // channels per ordered pair from the palmtree layer
	rem   int // extra slots per group wired as a circulant
}

// newGwire validates and builds a wiring plan.
func newGwire(groups, slots int) (gwire, error) {
	if groups < 2 {
		return gwire{}, fmt.Errorf("topology: global wiring needs at least 2 groups (got %d)", groups)
	}
	base := slots / (groups - 1)
	rem := slots % (groups - 1)
	if rem%2 == 1 && groups%2 == 1 {
		return gwire{}, fmt.Errorf("topology: global wiring with %d slots per group and g=%d is asymmetric (slots mod (g-1) = %d is odd while g is odd); choose a group count with slots mod (g-1) even, or an even g", slots, groups, rem)
	}
	return gwire{g: groups, slots: slots, base: base, rem: rem}, nil
}

// extraOffset returns the circulant offset of remainder slot i
// (0 <= i < rem): +1, -1, +2, -2, …, and g/2 for the final slot when rem
// is odd.
func (w gwire) extraOffset(i int) int {
	if w.rem%2 == 1 && i == w.rem-1 {
		return w.g / 2
	}
	if i%2 == 0 {
		return i/2 + 1
	}
	return -(i/2 + 1)
}

// target returns the group reached by slot c of group grp.
func (w gwire) target(grp, c int) int {
	nbase := w.base * (w.g - 1)
	if c < nbase {
		return (grp + 1 + c%(w.g-1)) % w.g
	}
	off := w.extraOffset(c - nbase)
	return ((grp+off)%w.g + w.g) % w.g
}

// peer returns the peer (group, slot) of slot c of group grp: the slot
// in the target group carrying the reverse direction of the channel.
func (w gwire) peer(grp, c int) (dst, back int) {
	nbase := w.base * (w.g - 1)
	dst = w.target(grp, c)
	if c < nbase {
		m := c / (w.g - 1)
		// The reverse slot's palmtree offset lies in [0, g-2] because
		// grp != dst, so reducing mod g is exact.
		off := ((grp-dst-1)%w.g + w.g) % w.g
		return dst, off + m*(w.g-1)
	}
	i := c - nbase
	off := w.extraOffset(i)
	if off == w.g/2 && w.rem%2 == 1 && i == w.rem-1 {
		// Antipodal matching pairs the same remainder index on both sides.
		return dst, c
	}
	var j int
	if off > 0 {
		j = 2*off - 1 // reverse offset -off lives at odd index 2*off-1
	} else {
		j = 2 * (-off - 1) // reverse offset +(-off) lives at even index
	}
	return dst, nbase + j
}

// between returns the number of channels connecting groups ga and gb
// (symmetric in its arguments).
func (w gwire) between(ga, gb int) int {
	if ga == gb {
		return 0
	}
	n := w.base
	for i := 0; i < w.rem; i++ {
		if ((ga+w.extraOffset(i))%w.g+w.g)%w.g == gb {
			n++
		}
	}
	return n
}

// slotFor returns the m-th slot of group grp targeting group dst, with m
// wrapped into the pair's channel count; -1 when grp == dst.
func (w gwire) slotFor(grp, dst, m int) int {
	if grp == dst {
		return -1
	}
	n := w.between(grp, dst)
	m %= n
	off := ((dst-grp-1)%w.g + w.g) % w.g
	if m < w.base {
		return off + m*(w.g-1)
	}
	want := m - w.base
	nbase := w.base * (w.g - 1)
	for i := 0; i < w.rem; i++ {
		if ((grp+w.extraOffset(i))%w.g+w.g)%w.g == dst {
			if want == 0 {
				return nbase + i
			}
			want--
		}
	}
	return -1 // unreachable: between() bounded m
}
