package topology

import (
	"fmt"
	"sort"
)

// Machine is the pluggable topology contract: everything the rest of
// the system — routing algorithms, the cycle-accurate simulator, the
// fault planner, the shard partitioner, the cost model and the service
// layer — needs from a concrete topology. It bundles four views:
//
//   - the wiring view (Routers/Radix/Port/Terminal*): the flat channel
//     table the simulator executes and the fault planner enumerates;
//   - the group structure (Groups/RouterGroup/...): group-major router
//     numbering that doubles as the shard-partition hint (routers of
//     one group must be contiguous, ascending — every builder in this
//     package numbers router r = grp*RoutersPerGroup()+idx);
//   - the minimal-path oracle (LocalRoute/GlobalSlot/...): the
//     structural queries the routing algorithms compose into minimal
//     and Valiant paths, phrased so one global hop always suffices
//     between any two groups (an all-to-all inter-group graph, the
//     invariant every dragonfly-family topology shares);
//   - the policy view (MinVCs/Describe): how many virtual channels the
//     topology's local-route structure needs for deadlock freedom, and
//     a structure descriptor for registries, costing and conformance
//     tests.
//
// *Dragonfly, *DragonflyFB, *DragonflyPlus, *Swapped and *Aries all
// implement it; *Degraded and *Switched wrap any Machine with fault
// awareness. The interface is defined here (not in internal/routing)
// so the dependency arrow keeps pointing outward: routing's Topo is a
// structural subset of Machine.
type Machine interface {
	// Wiring view (the embedded Graph provides these).
	Routers() int
	Terminals() int
	Radix(router int) int
	Port(router, port int) Port
	TerminalRouter(t int) int
	TerminalPort(t int) int
	CountChannels() (terminal, local, global int)

	// Group structure. Router numbering is group-major: the routers of
	// group grp are exactly [grp*RoutersPerGroup(), (grp+1)*RoutersPerGroup()),
	// and terminals are likewise contiguous per group.
	Groups() int
	RouterGroup(r int) int
	RouterIndex(r int) int
	GroupRouter(grp, idx int) int
	RoutersPerGroup() int
	TerminalsPerGroup() int
	TerminalGroup(t int) int

	// Minimal-path oracle. LocalRoute returns the next-hop local port
	// from in-group index from towards to (-1 when from == to);
	// LocalHops the intra-group distance. Global-channel slots are
	// group-scoped ids: GlobalPort/SlotRouterIndex locate a slot on its
	// owning router, ChannelsBetween/GlobalSlot/GlobalEntryRouter
	// describe the inter-group wiring. Every distinct group pair has
	// ChannelsBetween >= 1.
	LocalRoute(from, to int) int
	LocalHops(from, to int) int
	GlobalPort(slot int) int
	SlotRouterIndex(slot int) int
	ChannelsBetween(ga, gb int) int
	GlobalSlot(grp, dst, m int) int
	GlobalEntryRouter(grp, dst, slot int) int

	// Policy and description.
	Nodes() int
	RouterRadix() int
	MinVCs() int
	Describe() Descriptor
	String() string
}

// SeededLocal is the optional capability of machines whose groups wire
// parallel local links between router pairs (e.g. Aries' bundled
// inter-chassis cables): LocalRouteSeeded is LocalRoute with a
// deterministic per-packet spread over the bundle. The routing layer
// detects it by type assertion; Degraded and Switched forward it, so
// the capability survives fault wrapping. Machines without parallel
// local links simply don't implement it.
type SeededLocal interface {
	LocalRouteSeeded(from, to int, seed uint64) int
}

// Descriptor is the analytic structure summary of a Machine: sizes and
// per-class channel counts computed from the construction parameters,
// not from the wiring table. The conformance suite cross-checks it
// against the graph census, so a builder bug shows up as a descriptor
// mismatch rather than a silent mis-wiring.
type Descriptor struct {
	// Family is the registry name the machine was (or could be) built
	// from; Params its canonical build parameters.
	Family string         `json:"family"`
	Params map[string]int `json:"params"`

	Groups            int `json:"groups"`
	RoutersPerGroup   int `json:"routers_per_group"`
	TerminalsPerGroup int `json:"terminals_per_group"`
	Routers           int `json:"routers"`
	Terminals         int `json:"terminals"`
	// RouterRadix is the maximum router radix (ports incl. terminals);
	// machines with non-uniform routers (e.g. leaf/spine) report the
	// largest.
	RouterRadix int `json:"router_radix"`

	// Per-class bidirectional channel counts over the whole machine.
	TerminalChannels int `json:"terminal_channels"`
	LocalChannels    int `json:"local_channels"`
	GlobalChannels   int `json:"global_channels"`
}

// ParamSpec describes one integer build parameter of a topology family.
type ParamSpec struct {
	// Name is the parameter key accepted by Family.Build.
	Name string `json:"name"`
	// Doc is a one-line description.
	Doc string `json:"doc"`
	// Default is the value used when the key is omitted.
	Default int `json:"default"`
}

// Family is a registered topology family: a named builder plus its
// parameter schema, the unit the CLI flags and the service's
// /v1/topologies endpoint expose.
type Family struct {
	// Name is the registry key ("dragonfly", "swapped", ...).
	Name string
	// Doc is a one-line description of the family.
	Doc string
	// Params is the parameter schema, in canonical order.
	Params []ParamSpec
	// Build constructs a machine from a complete parameter map (every
	// key of Params present; Families' Build wrapper applies defaults).
	Build func(params map[string]int) (Machine, error)
}

// families is the registry, in presentation order: the canonical
// topology first, then the variants.
var families = []Family{
	{
		Name: "dragonfly",
		Doc:  "canonical dragonfly (ISCA 2008): fully connected groups of a routers, h global channels each",
		Params: []ParamSpec{
			{Name: "p", Doc: "terminals per router", Default: 4},
			{Name: "a", Doc: "routers per group", Default: 8},
			{Name: "h", Doc: "global channels per router", Default: 4},
			{Name: "g", Doc: "groups (0 = maximal a*h+1)", Default: 0},
		},
		Build: func(ps map[string]int) (Machine, error) {
			return NewDragonfly(ps["p"], ps["a"], ps["h"], ps["g"])
		},
	},
	{
		Name: "dragonflyfb",
		Doc:  "dragonfly variant of Figure 6(b): flattened-butterfly groups (d1 x d2 x d3 routers)",
		Params: []ParamSpec{
			{Name: "p", Doc: "terminals per router", Default: 4},
			{Name: "d1", Doc: "group dimension 1 size", Default: 2},
			{Name: "d2", Doc: "group dimension 2 size (0 = one-dimensional group)", Default: 4},
			{Name: "d3", Doc: "group dimension 3 size (0 = unused)", Default: 0},
			{Name: "h", Doc: "global channels per router", Default: 4},
			{Name: "g", Doc: "groups (0 = maximal a*h+1)", Default: 0},
		},
		Build: func(ps map[string]int) (Machine, error) {
			dims := []int{ps["d1"]}
			for _, k := range []string{"d2", "d3"} {
				if ps[k] > 0 {
					dims = append(dims, ps[k])
				}
			}
			return NewDragonflyFB(ps["p"], dims, ps["h"], ps["g"])
		},
	},
	{
		Name: "dragonflyplus",
		Doc:  "Dragonfly+ (leaf/spine groups): bipartite leaves with terminals, spines with global channels",
		Params: []ParamSpec{
			{Name: "p", Doc: "terminals per leaf router", Default: 4},
			{Name: "leaves", Doc: "leaf routers per group", Default: 4},
			{Name: "spines", Doc: "spine routers per group", Default: 4},
			{Name: "h", Doc: "global channels per spine", Default: 4},
			{Name: "g", Doc: "groups (0 = maximal spines*h+1)", Default: 0},
		},
		Build: func(ps map[string]int) (Machine, error) {
			return NewDragonflyPlus(ps["p"], ps["leaves"], ps["spines"], ps["h"], ps["g"])
		},
	},
	{
		Name: "swapped",
		Doc:  "swapped dragonfly D3(K,M) (arXiv 2202.01843): OTIS wiring, router (g,i) linked to (i,g)",
		Params: []ParamSpec{
			{Name: "p", Doc: "terminals per router", Default: 4},
			{Name: "k", Doc: "routers per group", Default: 8},
			{Name: "m", Doc: "groups, at most k (0 = k)", Default: 0},
		},
		Build: func(ps map[string]int) (Machine, error) {
			return NewSwapped(ps["p"], ps["k"], ps["m"])
		},
	},
	{
		Name: "aries",
		Doc:  "Aries-style cascade machine: chassis x blade groups, bundled inter-chassis and global links",
		Params: []ParamSpec{
			{Name: "p", Doc: "terminals per router", Default: 4},
			{Name: "blades", Doc: "blades (routers) per chassis", Default: 16},
			{Name: "chassis", Doc: "chassis per group", Default: 6},
			{Name: "bundle", Doc: "parallel links per inter-chassis pair", Default: 3},
			{Name: "h", Doc: "global channels per router", Default: 10},
			{Name: "g", Doc: "groups", Default: 8},
		},
		Build: func(ps map[string]int) (Machine, error) {
			return NewAries(ps["p"], ps["blades"], ps["chassis"], ps["bundle"], ps["h"], ps["g"])
		},
	},
}

// Families returns the registered topology families in presentation
// order. The slice is a copy; the Family values share the registry's
// immutable schema slices.
func Families() []Family {
	out := make([]Family, len(families))
	copy(out, families)
	return out
}

// FamilyNames returns the registered family names in order.
func FamilyNames() []string {
	names := make([]string, len(families))
	for i, f := range families {
		names[i] = f.Name
	}
	return names
}

// FamilyByName looks up a registered family.
func FamilyByName(name string) (Family, bool) {
	for _, f := range families {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}

// Build constructs a machine of the named family from a (possibly
// partial) parameter map: omitted keys take the schema defaults,
// unknown keys are rejected with the valid set in the error. A nil map
// builds the family's default configuration.
func Build(family string, params map[string]int) (Machine, error) {
	f, ok := FamilyByName(family)
	if !ok {
		return nil, fmt.Errorf("topology: unknown family %q (supported: %v)", family, FamilyNames())
	}
	full := make(map[string]int, len(f.Params))
	for _, p := range f.Params {
		full[p.Name] = p.Default
	}
	var unknown []string
	for k, v := range params {
		if _, ok := full[k]; !ok {
			unknown = append(unknown, k)
			continue
		}
		full[k] = v
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		valid := make([]string, len(f.Params))
		for i, p := range f.Params {
			valid[i] = p.Name
		}
		return nil, fmt.Errorf("topology: family %q: unknown parameter(s) %v (valid: %v)", family, unknown, valid)
	}
	return f.Build(full)
}
