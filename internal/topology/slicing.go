package topology

import "fmt"

// Section 3.2 describes two capacity knobs beyond the base topology:
// channel slicing — running S parallel copies of the network instead of
// widening channels (which would cost radix) — and bandwidth tapering —
// removing inter-group channels where uniform global bandwidth is not
// needed. Both are planning-level transforms: they change channel
// inventories and cost, not the routing problem, so they are modelled as
// descriptors over a base dragonfly configuration.

// SlicedDragonfly describes S parallel dragonfly networks serving the
// same terminals. Each terminal attaches to every slice; injection
// bandwidth and bisection scale by Slices while router radix stays k.
type SlicedDragonfly struct {
	// Base is the per-slice configuration.
	Base *Dragonfly
	// Slices is the number of parallel networks (>= 1).
	Slices int
}

// NewSlicedDragonfly wraps a dragonfly in S parallel slices.
func NewSlicedDragonfly(base *Dragonfly, slices int) (*SlicedDragonfly, error) {
	if base == nil {
		return nil, fmt.Errorf("topology: sliced dragonfly needs a base network")
	}
	if slices < 1 {
		return nil, fmt.Errorf("topology: slice count must be >= 1 (got %d)", slices)
	}
	return &SlicedDragonfly{Base: base, Slices: slices}, nil
}

// Nodes returns the terminal count (shared by all slices).
func (s *SlicedDragonfly) Nodes() int { return s.Base.Nodes() }

// Routers returns the total router count across slices.
func (s *SlicedDragonfly) Routers() int { return s.Slices * s.Base.Routers() }

// InjectionBandwidth returns the per-terminal injection channels.
func (s *SlicedDragonfly) InjectionBandwidth() int { return s.Slices }

// CountChannels returns the channel inventory across all slices
// (terminal channels count once per slice: each terminal attaches to
// every slice).
func (s *SlicedDragonfly) CountChannels() (terminal, local, global int) {
	t, l, g := s.Base.CountChannels()
	return s.Slices * t, s.Slices * l, s.Slices * g
}

// String describes the configuration.
func (s *SlicedDragonfly) String() string {
	return fmt.Sprintf("sliced(%dx %v)", s.Slices, s.Base)
}

// TaperedDragonfly describes a dragonfly whose inter-group bandwidth has
// been tapered: only a fraction of the maximal global channels are
// installed. Tapering reduces cost when uniform global bandwidth is not
// needed, at the price of lower worst-case throughput.
type TaperedDragonfly struct {
	// Base is the untapered configuration.
	Base *Dragonfly
	// Fraction in (0, 1] of the base global channels retained.
	Fraction float64
}

// NewTaperedDragonfly tapers a dragonfly's global channels to the given
// fraction. Every pair of groups must keep at least one channel, so the
// fraction is bounded below by what the group count requires.
func NewTaperedDragonfly(base *Dragonfly, fraction float64) (*TaperedDragonfly, error) {
	if base == nil {
		return nil, fmt.Errorf("topology: tapered dragonfly needs a base network")
	}
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("topology: taper fraction %v out of (0, 1]", fraction)
	}
	// Keeping every group pair connected needs at least (g-1)/2 channels
	// per group (each channel serves one pair end).
	_, _, global := base.CountChannels()
	kept := int(float64(global) * fraction)
	needed := base.G * (base.G - 1) / 2
	if kept < needed {
		return nil, fmt.Errorf("topology: taper fraction %v keeps %d global channels, but %d groups need at least %d to stay fully connected",
			fraction, kept, base.G, needed)
	}
	return &TaperedDragonfly{Base: base, Fraction: fraction}, nil
}

// GlobalChannels returns the tapered global channel count.
func (t *TaperedDragonfly) GlobalChannels() int {
	_, _, global := t.Base.CountChannels()
	return int(float64(global) * t.Fraction)
}

// WorstCaseThroughputBound returns the upper bound on per-terminal
// worst-case throughput after tapering: global bisection shrinks by the
// taper fraction.
func (t *TaperedDragonfly) WorstCaseThroughputBound() float64 {
	// Balanced untapered dragonfly sustains ~0.5 of injection bandwidth
	// on adversarial traffic with non-minimal routing (Section 4.2).
	return 0.5 * t.Fraction * float64(2*t.Base.H) / float64(t.Base.P) / 2
}

// String describes the configuration.
func (t *TaperedDragonfly) String() string {
	return fmt.Sprintf("tapered(%.0f%% of %v)", 100*t.Fraction, t.Base)
}
