package topology

import "testing"

func TestSlicedDragonfly(t *testing.T) {
	base := mustDragonfly(t, 2, 4, 2, 0)
	s, err := NewSlicedDragonfly(base, 3)
	if err != nil {
		t.Fatalf("NewSlicedDragonfly: %v", err)
	}
	if s.Nodes() != base.Nodes() {
		t.Errorf("Nodes = %d, want %d (terminals are shared)", s.Nodes(), base.Nodes())
	}
	if s.Routers() != 3*base.Routers() {
		t.Errorf("Routers = %d, want %d", s.Routers(), 3*base.Routers())
	}
	if s.InjectionBandwidth() != 3 {
		t.Errorf("InjectionBandwidth = %d, want 3", s.InjectionBandwidth())
	}
	bt, bl, bg := base.CountChannels()
	st, sl, sg := s.CountChannels()
	if st != 3*bt || sl != 3*bl || sg != 3*bg {
		t.Error("channel inventory must scale by the slice count")
	}
	if _, err := NewSlicedDragonfly(nil, 2); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := NewSlicedDragonfly(base, 0); err == nil {
		t.Error("zero slices accepted")
	}
}

func TestTaperedDragonfly(t *testing.T) {
	base := mustDragonfly(t, 2, 4, 2, 0) // 9 groups, 36 global channels
	tp, err := NewTaperedDragonfly(base, 1.0)
	if err != nil {
		t.Fatalf("NewTaperedDragonfly: %v", err)
	}
	_, _, global := base.CountChannels()
	if tp.GlobalChannels() != global {
		t.Errorf("untapered GlobalChannels = %d, want %d", tp.GlobalChannels(), global)
	}
	// All pairs must stay connected: 9 groups need 36 channels; any
	// fraction below 1 drops under the floor for this small config.
	if _, err := NewTaperedDragonfly(base, 0.5); err == nil {
		t.Error("taper below the connectivity floor accepted")
	}
	if _, err := NewTaperedDragonfly(base, 0); err == nil {
		t.Error("zero fraction accepted")
	}
	if _, err := NewTaperedDragonfly(nil, 0.5); err == nil {
		t.Error("nil base accepted")
	}

	// A larger configuration leaves real tapering room: p=h=4, a=8 has
	// 33 groups, 528 pair-channels minimum vs 4224... per group pair the
	// maximal config has 8x redundancy at g=17.
	big := mustDragonfly(t, 4, 8, 4, 17)
	tp2, err := NewTaperedDragonfly(big, 0.5)
	if err != nil {
		t.Fatalf("NewTaperedDragonfly(big, 0.5): %v", err)
	}
	if b := tp2.WorstCaseThroughputBound(); b <= 0 || b > 0.5 {
		t.Errorf("worst-case bound %v out of range", b)
	}
	full, err := NewTaperedDragonfly(big, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if tp2.WorstCaseThroughputBound() >= full.WorstCaseThroughputBound() {
		t.Error("tapering must lower the worst-case throughput bound")
	}
}
