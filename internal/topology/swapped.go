package topology

import "fmt"

// Swapped is the Swapped Dragonfly D3(K,M) of Draper (arXiv
// 2202.01843): M groups (M <= K) of K fully connected routers, with the
// OTIS "swapped" inter-group wiring — router i of group g carries a
// single global channel to router g of group i, for every i < M with
// i != g. The group-level graph is all-to-all with exactly one channel
// per pair, the diameter is 3, and the machine scales linearly in M at
// fixed router radix: trimming M below K removes groups (and the global
// ports of routers with index >= M) without rewiring anything else.
//
// Port layout on router (g, i):
//
//	ports [0, P)        terminal ports
//	ports [P, P+K-1)    local ports (fully connected group, Dragonfly
//	                    layout: port P+j reaches index j if j < i, else j+1)
//	port  P+K-1         the global port to router (i, g), present only
//	                    when i < M and i != g
//
// Global-channel slots of a group are the destination group indices:
// slot c of group g (c < M, c != g) is the channel to group c, owned by
// router index c at the constant port P+K-1. Router (g, g) has no
// global port — the swapped wiring pairs it with itself — so routers
// have non-uniform radix, which the Graph's per-router port lists
// carry naturally.
type Swapped struct {
	*Graph

	// P is the number of terminals per router.
	P int
	// K is the number of routers per group.
	K int
	// M is the number of groups, at most K.
	M int
}

// NewSwapped builds a D3(K,M). m = 0 selects the maximal M = K.
func NewSwapped(p, k, m int) (*Swapped, error) {
	if p < 1 || k < 1 {
		return nil, fmt.Errorf("topology: swapped dragonfly parameters must be positive (p=%d k=%d)", p, k)
	}
	if m == 0 {
		m = k
	}
	if m < 1 || m > k {
		return nil, fmt.Errorf("topology: swapped dragonfly D3(K,M) needs 1 <= M <= K (got K=%d M=%d)", k, m)
	}
	d := &Swapped{P: p, K: k, M: m}

	routers := k * m
	g := NewGraph(routers, p*routers)
	for r := 0; r < routers; r++ {
		grp, idx := r/k, r%k
		radix := p + k - 1
		hasGlobal := idx < m && idx != grp
		if hasGlobal {
			radix++
		}
		ports := make([]Port, 0, radix)
		for t := 0; t < p; t++ {
			term := r*p + t
			ports = append(ports, Port{Class: ClassTerminal, PeerRouter: -1, PeerPort: -1, Terminal: term})
			g.termRouter[term] = r
			g.termPort[term] = t
		}
		for j := 0; j < k-1; j++ {
			peerIdx := j
			if j >= idx {
				peerIdx = j + 1
			}
			ports = append(ports, Port{
				Class:      ClassLocal,
				PeerRouter: grp*k + peerIdx,
				PeerPort:   d.LocalPort(peerIdx, idx),
				Terminal:   -1,
			})
		}
		if hasGlobal {
			// The swapped link: (grp, idx) <-> (idx, grp), both at the
			// constant global port.
			ports = append(ports, Port{
				Class:      ClassGlobal,
				PeerRouter: idx*k + grp,
				PeerPort:   p + k - 1,
				Terminal:   -1,
			})
		}
		g.ports[r] = ports
	}
	d.Graph = g
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("topology: swapped dragonfly construction bug: %w", err)
	}
	return d, nil
}

// Groups returns the group count M.
func (d *Swapped) Groups() int { return d.M }

// Nodes returns the terminal count N = K·M·p.
func (d *Swapped) Nodes() int { return d.K * d.M * d.P }

// RoutersPerGroup returns K.
func (d *Swapped) RoutersPerGroup() int { return d.K }

// TerminalsPerGroup returns K·p.
func (d *Swapped) TerminalsPerGroup() int { return d.K * d.P }

// RouterGroup returns the group of router r.
func (d *Swapped) RouterGroup(r int) int { return r / d.K }

// RouterIndex returns the in-group index of router r.
func (d *Swapped) RouterIndex(r int) int { return r % d.K }

// GroupRouter returns the router with in-group index idx of group grp.
func (d *Swapped) GroupRouter(grp, idx int) int { return grp*d.K + idx }

// TerminalGroup returns the group of terminal t.
func (d *Swapped) TerminalGroup(t int) int { return d.RouterGroup(d.TerminalRouter(t)) }

// RouterRadix returns the largest router radix, p+k (routers whose
// swapped peer would be themselves, and those with index >= M, lack the
// global port).
func (d *Swapped) RouterRadix() int {
	if d.M > 1 {
		return d.P + d.K
	}
	return d.P + d.K - 1
}

// LocalPort returns the port on in-group index from reaching in-group
// index to of the same (fully connected) group.
func (d *Swapped) LocalPort(from, to int) int {
	if to < from {
		return d.P + to
	}
	return d.P + to - 1
}

// LocalRoute returns the next-hop local port from in-group index from
// towards to: the direct port of the fully connected group.
func (d *Swapped) LocalRoute(from, to int) int {
	if from == to {
		return -1
	}
	return d.LocalPort(from, to)
}

// LocalHops returns the intra-group distance: 0 or 1.
func (d *Swapped) LocalHops(from, to int) int {
	if from == to {
		return 0
	}
	return 1
}

// GlobalPort returns the port of global-channel slot c on its owning
// router: the constant P+K-1.
func (d *Swapped) GlobalPort(c int) int { return d.P + d.K - 1 }

// SlotRouterIndex returns the in-group index of the router owning slot
// c: index c itself (slot ids are destination groups).
func (d *Swapped) SlotRouterIndex(c int) int { return c }

// ChannelsBetween returns the global channels connecting two groups:
// exactly 1 for every distinct pair.
func (d *Swapped) ChannelsBetween(ga, gb int) int {
	if ga == gb {
		return 0
	}
	return 1
}

// GlobalSlot returns the m-th slot of grp leading to dst — slot dst,
// for any m, since each pair has one channel. It reports -1 when
// grp == dst.
func (d *Swapped) GlobalSlot(grp, dst, m int) int {
	if grp == dst {
		return -1
	}
	return dst
}

// GlobalEntryRouter returns the router of group dst reached via slot c
// of group grp — router (dst, grp) — or -1 if the slot leads elsewhere.
func (d *Swapped) GlobalEntryRouter(grp, dst, c int) int {
	if c != dst || grp == dst {
		return -1
	}
	return dst*d.K + grp
}

// MinVCs returns the virtual channels the routing ladder needs: 3, as
// for the canonical dragonfly — the group is the same fully connected
// clique, and the swapped inter-group graph is all-to-all, so the
// Figure 7 ladder applies unchanged.
func (d *Swapped) MinVCs() int { return 3 }

// Describe returns the analytic structure descriptor.
func (d *Swapped) Describe() Descriptor {
	return Descriptor{
		Family:            "swapped",
		Params:            map[string]int{"p": d.P, "k": d.K, "m": d.M},
		Groups:            d.M,
		RoutersPerGroup:   d.K,
		TerminalsPerGroup: d.K * d.P,
		Routers:           d.K * d.M,
		Terminals:         d.Nodes(),
		RouterRadix:       d.RouterRadix(),
		TerminalChannels:  d.Nodes(),
		LocalChannels:     d.M * d.K * (d.K - 1) / 2,
		GlobalChannels:    d.M * (d.M - 1) / 2,
	}
}

// String describes the configuration.
func (d *Swapped) String() string {
	return fmt.Sprintf("swapped(p=%d k=%d m=%d N=%d kmax=%d)",
		d.P, d.K, d.M, d.Nodes(), d.RouterRadix())
}
