package topology

// Switched is a mutable holder of the current fault epoch over one
// Machine: it exposes the same fault-aware interface as Degraded but
// delegates every liveness query to a swappable current view. One
// Switched belongs to one simulation — the routing algorithm and the
// simulator built over it both observe an epoch change the instant
// SetEpoch swaps the view, which is how a fault timeline re-resolves
// in-flight routing against the new fault set.
//
// The Degraded views themselves stay immutable and may be shared by
// any number of concurrent simulations; only the Switched wrapper is
// per-simulation state. Swapping is not synchronised — the simulator
// swaps between cycles, never mid-query.
type Switched struct {
	Machine
	cur *Degraded
}

// NewSwitched returns a switchable view of d starting at the fully
// alive epoch.
func NewSwitched(d Machine) *Switched {
	return &Switched{Machine: d, cur: NewDegraded(d, nil)}
}

// SetEpoch swaps the current view. The view must wrap the same
// machine this Switched was built over.
func (s *Switched) SetEpoch(v *Degraded) {
	if v.Machine != s.Machine {
		panic("topology: SetEpoch with a view of a different machine")
	}
	s.cur = v
}

// Epoch returns the current view.
func (s *Switched) Epoch() *Degraded { return s.cur }

// Alive reports whether the channel attached at (router, port) can
// carry flits under the current epoch.
func (s *Switched) Alive(router, port int) bool { return s.cur.Alive(router, port) }

// RouterDown reports that router r is failed in the current epoch.
func (s *Switched) RouterDown(r int) bool { return s.cur.RouterDown(r) }

// TerminalDown reports that terminal t is unreachable in the current
// epoch.
func (s *Switched) TerminalDown(t int) bool { return s.cur.TerminalDown(t) }

// AliveTerminals returns the live terminal count of the current epoch.
func (s *Switched) AliveTerminals() int { return s.cur.AliveTerminals() }

// LiveChannels returns the surviving global channels between the groups
// in the current epoch.
func (s *Switched) LiveChannels(ga, gb int) int { return s.cur.LiveChannels(ga, gb) }

// LiveGlobalSlot returns the m-th surviving global-channel slot of the
// group pair in the current epoch.
func (s *Switched) LiveGlobalSlot(grp, dst, m int) int { return s.cur.LiveGlobalSlot(grp, dst, m) }

// GroupsReachable reports group-level reachability over the live global
// channels of the current epoch.
func (s *Switched) GroupsReachable(ga, gb int) bool { return s.cur.GroupsReachable(ga, gb) }

// Connected reports whether the current epoch's live routers form one
// component.
func (s *Switched) Connected() bool { return s.cur.Connected() }

// FaultCounts returns the current epoch's failed router count and dead
// channel counts by class.
func (s *Switched) FaultCounts() (routers, global, local, terminal int) {
	return s.cur.FaultCounts()
}

// LocalRouteSeeded forwards the optional bundle-spreading capability of
// the wrapped machine (see Degraded.LocalRouteSeeded).
func (s *Switched) LocalRouteSeeded(from, to int, seed uint64) int {
	if sl, ok := s.Machine.(SeededLocal); ok {
		return sl.LocalRouteSeeded(from, to, seed)
	}
	return s.LocalRoute(from, to)
}
