package topology

import "testing"

func TestSwitchedDelegatesToCurrentEpoch(t *testing.T) {
	d, err := NewDragonfly(2, 4, 2, 0)
	if err != nil {
		t.Fatalf("NewDragonfly: %v", err)
	}
	sw := NewSwitched(d)

	// Pristine start: everything alive.
	if sw.AliveTerminals() != d.Terminals() {
		t.Fatalf("pristine AliveTerminals = %d, want %d", sw.AliveTerminals(), d.Terminals())
	}
	for p := 0; p < d.Radix(0); p++ {
		if !sw.Alive(0, p) {
			t.Fatalf("pristine port (0,%d) dead", p)
		}
	}
	if r, g, l, term := sw.FaultCounts(); r+g+l+term != 0 {
		t.Fatal("pristine view reports faults")
	}

	// Swap to a view with router 5 down: every query must flip to the
	// new view's answers.
	faulted := NewDegraded(d, routerDownView{5})
	sw.SetEpoch(faulted)
	if sw.Epoch() != faulted {
		t.Fatal("Epoch() does not return the swapped view")
	}
	if !sw.RouterDown(5) {
		t.Error("router 5 alive after swap")
	}
	if sw.Alive(5, 0) {
		t.Error("port of a down router alive after swap")
	}
	if sw.AliveTerminals() != d.Terminals()-d.P {
		t.Errorf("AliveTerminals = %d, want %d", sw.AliveTerminals(), d.Terminals()-d.P)
	}
	if r, _, _, _ := sw.FaultCounts(); r != 1 {
		t.Errorf("FaultCounts routers = %d, want 1", r)
	}

	// Swap back: the pristine answers return.
	sw.SetEpoch(NewDegraded(d, nil))
	if sw.RouterDown(5) || !sw.Alive(5, 0) {
		t.Error("swap back to pristine did not restore liveness")
	}
}

func TestSwitchedRejectsForeignView(t *testing.T) {
	d1, err := NewDragonfly(2, 4, 2, 0)
	if err != nil {
		t.Fatalf("NewDragonfly: %v", err)
	}
	d2, err := NewDragonfly(2, 4, 2, 0)
	if err != nil {
		t.Fatalf("NewDragonfly: %v", err)
	}
	sw := NewSwitched(d1)
	defer func() {
		if recover() == nil {
			t.Error("SetEpoch with a foreign dragonfly's view did not panic")
		}
	}()
	sw.SetEpoch(NewDegraded(d2, nil))
}

// routerDownView is a minimal FaultView failing one router.
type routerDownView struct{ r int }

func (v routerDownView) RouterDown(r int) bool  { return r == v.r }
func (v routerDownView) PortDown(int, int) bool { return false }
