// Package topology models the static structure of interconnection
// networks: routers, ports, channels and the terminals (processing nodes)
// attached to them.
//
// The package provides the dragonfly topology of Kim, Dally, Scott and
// Abts (ISCA 2008) together with the baseline topologies the paper
// compares against — flattened butterflies, folded Clos (fat-tree)
// networks and 3-D tori — and the analytic scalability relations used by
// the paper's Figures 1, 4 and 18 and Table 2.
//
// A topology is described by a Graph: a flat, immutable wiring table that
// the cycle-accurate simulator (internal/sim) consumes directly. Concrete
// topologies such as Dragonfly embed a Graph and add structure-aware
// helpers (group membership, global-channel lookup, minimal-path port
// selection) used by the routing algorithms in internal/routing.
package topology

import (
	"errors"
	"fmt"
)

// Class identifies the role of a channel (and of the port it attaches to).
// The distinction matters throughout the paper: global channels are the
// long, expensive, inter-cabinet cables whose count the dragonfly
// minimises, while local channels stay within a group (cabinet) and
// terminal channels connect processing nodes to their router.
type Class uint8

const (
	// ClassTerminal connects a router port to a processing node.
	ClassTerminal Class = iota
	// ClassLocal connects two routers in the same group (intra-cabinet).
	ClassLocal
	// ClassGlobal connects routers in different groups (inter-cabinet).
	ClassGlobal
)

// String returns the lower-case name of the class.
func (c Class) String() string {
	switch c {
	case ClassTerminal:
		return "terminal"
	case ClassLocal:
		return "local"
	case ClassGlobal:
		return "global"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Port describes one side of a bidirectional channel as seen from the
// router that owns the port.
type Port struct {
	// Class is the channel class of the attached link.
	Class Class
	// PeerRouter is the router on the other side of the link, or -1 for
	// a terminal port.
	PeerRouter int
	// PeerPort is the port index on PeerRouter that forms the reverse
	// direction of this link. Undefined for terminal ports.
	PeerPort int
	// Terminal is the terminal attached to this port when Class is
	// ClassTerminal, and -1 otherwise.
	Terminal int
}

// Graph is a flat description of a network: a set of routers, each with an
// ordered list of ports, plus the attachment point of every terminal.
// Graphs are immutable once built; all slices are owned by the Graph.
type Graph struct {
	ports      [][]Port
	termRouter []int
	termPort   []int
}

// NewGraph creates an empty graph with the given number of routers and
// terminals. Ports are added with AddLink and AddTerminal.
func NewGraph(routers, terminals int) *Graph {
	return &Graph{
		ports:      make([][]Port, routers),
		termRouter: make([]int, terminals),
		termPort:   make([]int, terminals),
	}
}

// Routers returns the number of routers in the graph.
func (g *Graph) Routers() int { return len(g.ports) }

// Terminals returns the number of terminals in the graph.
func (g *Graph) Terminals() int { return len(g.termRouter) }

// Radix returns the number of ports on router r, counting terminal ports.
func (g *Graph) Radix(r int) int { return len(g.ports[r]) }

// Port returns the description of port i on router r.
func (g *Graph) Port(r, i int) Port { return g.ports[r][i] }

// TerminalRouter returns the router that terminal t attaches to.
func (g *Graph) TerminalRouter(t int) int { return g.termRouter[t] }

// TerminalPort returns the port on TerminalRouter(t) that terminal t
// attaches to.
func (g *Graph) TerminalPort(t int) int { return g.termPort[t] }

// AddTerminal attaches terminal t to router r, appending a terminal port,
// and returns the new port's index. Out-of-range indices and double
// attachment are builder bugs; AddTerminal panics with the offending
// terminal, router and port so a new topology's construction error is
// diagnosable at the call site.
func (g *Graph) AddTerminal(t, r int) int {
	if t < 0 || t >= len(g.termRouter) {
		panic(fmt.Sprintf("topology: AddTerminal(t=%d, r=%d): terminal %d out of range [0,%d)", t, r, t, len(g.termRouter)))
	}
	if r < 0 || r >= len(g.ports) {
		panic(fmt.Sprintf("topology: AddTerminal(t=%d, r=%d): router %d out of range [0,%d)", t, r, r, len(g.ports)))
	}
	if p := g.ports[g.termRouter[t]]; g.termPort[t] < len(p) &&
		p[g.termPort[t]].Class == ClassTerminal && p[g.termPort[t]].Terminal == t {
		panic(fmt.Sprintf("topology: AddTerminal(t=%d, r=%d): terminal %d already attached at router %d port %d",
			t, r, t, g.termRouter[t], g.termPort[t]))
	}
	i := len(g.ports[r])
	g.ports[r] = append(g.ports[r], Port{Class: ClassTerminal, PeerRouter: -1, PeerPort: -1, Terminal: t})
	g.termRouter[t] = r
	g.termPort[t] = i
	return i
}

// AddLink connects routers a and b with a bidirectional channel of the
// given class, appending one port on each side, and returns the two new
// port indices. Out-of-range routers and a terminal class are builder
// bugs; AddLink panics naming both endpoints (router and would-be port
// on each side) so a mis-wired topology builder fails loudly at the
// offending link, not later in Validate.
func (g *Graph) AddLink(a, b int, class Class) (portA, portB int) {
	if a < 0 || a >= len(g.ports) || b < 0 || b >= len(g.ports) {
		aPort, bPort := -1, -1
		if a >= 0 && a < len(g.ports) {
			aPort = len(g.ports[a])
		}
		if b >= 0 && b < len(g.ports) {
			bPort = len(g.ports[b])
		}
		panic(fmt.Sprintf("topology: AddLink(a=%d, b=%d, %v): router out of range [0,%d) (endpoints: router %d port %d <-> router %d port %d)",
			a, b, class, len(g.ports), a, aPort, b, bPort))
	}
	if class == ClassTerminal {
		panic(fmt.Sprintf("topology: AddLink(a=%d, b=%d, %v): terminal channels are added with AddTerminal (endpoints: router %d port %d <-> router %d port %d)",
			a, b, class, a, len(g.ports[a]), b, len(g.ports[b])))
	}
	portA = len(g.ports[a])
	portB = len(g.ports[b])
	if a == b {
		// A self-link still needs two distinct ports.
		portB = portA + 1
	}
	g.ports[a] = append(g.ports[a], Port{Class: class, PeerRouter: b, PeerPort: portB, Terminal: -1})
	g.ports[b] = append(g.ports[b], Port{Class: class, PeerRouter: a, PeerPort: portA, Terminal: -1})
	return portA, portB
}

// Validate checks the structural invariants of the graph: every non-
// terminal port must name a peer whose matching port points back, and
// every terminal must be attached to the port it claims. It returns a
// descriptive error for the first violation found.
func (g *Graph) Validate() error {
	for r := range g.ports {
		for i, p := range g.ports[r] {
			switch p.Class {
			case ClassTerminal:
				t := p.Terminal
				if t < 0 || t >= len(g.termRouter) {
					return fmt.Errorf("router %d port %d: terminal %d out of range", r, i, t)
				}
				if g.termRouter[t] != r || g.termPort[t] != i {
					return fmt.Errorf("terminal %d attachment mismatch at router %d port %d", t, r, i)
				}
			default:
				if p.PeerRouter < 0 || p.PeerRouter >= len(g.ports) {
					return fmt.Errorf("router %d port %d: peer router %d out of range", r, i, p.PeerRouter)
				}
				peer := g.ports[p.PeerRouter]
				if p.PeerPort < 0 || p.PeerPort >= len(peer) {
					return fmt.Errorf("router %d port %d: peer port %d out of range", r, i, p.PeerPort)
				}
				q := peer[p.PeerPort]
				if q.PeerRouter != r || q.PeerPort != i || q.Class != p.Class {
					return fmt.Errorf("router %d port %d: asymmetric link to router %d port %d", r, i, p.PeerRouter, p.PeerPort)
				}
			}
		}
	}
	for t := range g.termRouter {
		r, i := g.termRouter[t], g.termPort[t]
		if r < 0 || r >= len(g.ports) || i < 0 || i >= len(g.ports[r]) {
			return fmt.Errorf("terminal %d: attachment router %d port %d out of range", t, r, i)
		}
		if p := g.ports[r][i]; p.Class != ClassTerminal || p.Terminal != t {
			return fmt.Errorf("terminal %d: router %d port %d does not attach it", t, r, i)
		}
	}
	return nil
}

// CountChannels returns the number of bidirectional channels of each
// class. Terminal counts terminals, not ports.
func (g *Graph) CountChannels() (terminal, local, global int) {
	for r := range g.ports {
		for _, p := range g.ports[r] {
			switch p.Class {
			case ClassTerminal:
				terminal++
			case ClassLocal:
				local++
			case ClassGlobal:
				global++
			}
		}
	}
	// Router-to-router links were counted from both ends.
	return terminal, local / 2, global / 2
}

// Diameter returns the hop diameter of the router-to-router graph
// (terminal channels excluded) computed by breadth-first search, or an
// error if the graph is disconnected. It is intended for tests and small
// analytic studies, not for hot paths.
func (g *Graph) Diameter() (int, error) {
	n := len(g.ports)
	if n == 0 {
		return 0, errors.New("topology: empty graph")
	}
	dist := make([]int, n)
	queue := make([]int, 0, n)
	diameter := 0
	for src := 0; src < n; src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue = append(queue[:0], src)
		seen := 1
		for len(queue) > 0 {
			r := queue[0]
			queue = queue[1:]
			for _, p := range g.ports[r] {
				if p.Class == ClassTerminal {
					continue
				}
				if dist[p.PeerRouter] < 0 {
					dist[p.PeerRouter] = dist[r] + 1
					if dist[p.PeerRouter] > diameter {
						diameter = dist[p.PeerRouter]
					}
					queue = append(queue, p.PeerRouter)
					seen++
				}
			}
		}
		if seen != n {
			return 0, fmt.Errorf("topology: graph disconnected from router %d (%d of %d reachable)", src, seen, n)
		}
	}
	return diameter, nil
}

// AverageHops returns the mean router-to-router shortest-path hop count
// over all ordered router pairs, by BFS. Intended for tests and analytics.
func (g *Graph) AverageHops() (float64, error) {
	n := len(g.ports)
	if n < 2 {
		return 0, nil
	}
	total := 0
	dist := make([]int, n)
	queue := make([]int, 0, n)
	for src := 0; src < n; src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue = append(queue[:0], src)
		for len(queue) > 0 {
			r := queue[0]
			queue = queue[1:]
			for _, p := range g.ports[r] {
				if p.Class == ClassTerminal || dist[p.PeerRouter] >= 0 {
					continue
				}
				dist[p.PeerRouter] = dist[r] + 1
				queue = append(queue, p.PeerRouter)
			}
		}
		for r, d := range dist {
			if d < 0 {
				return 0, fmt.Errorf("topology: router %d unreachable from %d", r, src)
			}
			total += d
		}
	}
	return float64(total) / float64(n*(n-1)), nil
}
