package traffic

import (
	"fmt"
	"sort"
	"strings"
)

// Pattern is what the registry builds: the engine's traffic contract (a
// destination map over terminals) plus the name that identifies the
// pattern in snapshots and reports. Every concrete pattern in this
// package implements it.
type Pattern interface {
	Name() string
	Dest(src int, rand uint64) int
}

// Env carries the machine context a pattern is built against. Unlike
// topology parameters, several patterns are functions of the machine
// itself (group structure, terminal count), so Build takes the context
// out of band and the parameter map stays pure integers — same shape,
// same spelling rules, same error contract as topology.Build.
type Env struct {
	// Terminals is the terminal count (required, > 0).
	Terminals int
	// Grouped is the group-structure view, required by the
	// group-relative families (wc, groupoffset, tornado); nil otherwise.
	Grouped Grouped
	// Seed feeds the seeded families (perm).
	Seed uint64
}

// ParamSpec describes one integer parameter of a traffic family,
// mirroring topology.ParamSpec.
type ParamSpec struct {
	// Name is the parameter key accepted by Family.Build.
	Name string `json:"name"`
	// Doc is a one-line description.
	Doc string `json:"doc"`
	// Default is the value used when the key is omitted.
	Default int `json:"default"`
}

// Family is one registered traffic pattern family.
type Family struct {
	// Name is the registry key ("ur", "wc", "hotspot", ...), always
	// lower-case; lookups fold case so legacy spellings ("UR") resolve.
	Name string
	// Doc is a one-line description of the family.
	Doc string
	// Params is the parameter schema, in canonical order.
	Params []ParamSpec
	// Build constructs the pattern from a complete parameter map (every
	// key of Params present; the package-level Build applies defaults).
	Build func(env Env, params map[string]int) (Pattern, error)
}

// families is the registry, in listing order. The constructors are the
// same ones the pre-registry enum path called, so a registry-built
// pattern is the enum-built pattern — bit for bit (golden-pinned in
// internal/core).
var families = []Family{
	{
		Name: "ur",
		Doc:  "uniform random: every packet to a uniformly chosen other terminal (benign baseline, Figure 8(a))",
		Build: func(env Env, _ map[string]int) (Pattern, error) {
			return NewUniformRandom(env.Terminals), nil
		},
	},
	{
		Name: "wc",
		Doc:  "dragonfly worst case: group G_i sends to random nodes of G_i+1, funnelling each group through one global channel (Figure 8(b))",
		Build: func(env Env, _ map[string]int) (Pattern, error) {
			if env.Grouped == nil {
				return nil, fmt.Errorf("traffic: family \"wc\" needs a grouped machine")
			}
			return NewWorstCase(env.Grouped), nil
		},
	},
	{
		Name: "groupoffset",
		Doc:  "group G_i sends to random nodes of G_i+offset (offset 1 = worst case, g/2 = tornado)",
		Params: []ParamSpec{
			{Name: "offset", Doc: "group displacement; must not be a multiple of the group count", Default: 1},
		},
		Build: func(env Env, p map[string]int) (Pattern, error) {
			if env.Grouped == nil {
				return nil, fmt.Errorf("traffic: family \"groupoffset\" needs a grouped machine")
			}
			return NewGroupOffset(env.Grouped, p["offset"])
		},
	},
	{
		Name: "tornado",
		Doc:  "group-level tornado: group G_i sends to random nodes of G_i+g/2",
		Build: func(env Env, _ map[string]int) (Pattern, error) {
			if env.Grouped == nil {
				return nil, fmt.Errorf("traffic: family \"tornado\" needs a grouped machine")
			}
			return NewGroupOffset(env.Grouped, env.Grouped.Groups()/2)
		},
	},
	{
		Name: "bitcomp",
		Doc:  "bit complement: terminal i sends to terminal N-1-i",
		Build: func(env Env, _ map[string]int) (Pattern, error) {
			return NewBitComplement(env.Terminals), nil
		},
	},
	{
		Name: "transpose",
		Doc:  "matrix transpose permutation; needs a square terminal count",
		Build: func(env Env, _ map[string]int) (Pattern, error) {
			return NewTranspose(env.Terminals)
		},
	},
	{
		Name: "hotspot",
		Doc:  "a fraction of packets target a small, evenly spaced set of hot terminals; the rest go uniform random",
		Params: []ParamSpec{
			{Name: "hot", Doc: "number of hot terminals, spread evenly over the machine", Default: 1},
			{Name: "pct", Doc: "percentage of packets aimed at the hot set, in [0,100]", Default: 10},
		},
		Build: func(env Env, p map[string]int) (Pattern, error) {
			k := p["hot"]
			if k < 1 || k > env.Terminals {
				return nil, fmt.Errorf("traffic: hotspot hot=%d out of [1,%d]", k, env.Terminals)
			}
			if p["pct"] < 0 || p["pct"] > 100 {
				return nil, fmt.Errorf("traffic: hotspot pct=%d out of [0,100]", p["pct"])
			}
			hot := make([]int, k)
			for i := range hot {
				hot[i] = i * env.Terminals / k
			}
			return NewHotSpot(env.Terminals, hot, float64(p["pct"])/100)
		},
	},
	{
		Name: "perm",
		Doc:  "fixed random permutation of terminals, drawn once from the system seed",
		Build: func(env Env, _ map[string]int) (Pattern, error) {
			return NewPermutation(env.Terminals, env.Seed), nil
		},
	},
}

// Families returns the registered traffic families in listing order.
func Families() []Family {
	out := make([]Family, len(families))
	copy(out, families)
	return out
}

// FamilyNames returns the registered family names in order.
func FamilyNames() []string {
	names := make([]string, len(families))
	for i, f := range families {
		names[i] = f.Name
	}
	return names
}

// FamilyByName looks up a registered family. Lookup is case-insensitive
// so the legacy enum spellings ("UR", "WC") resolve to their families.
func FamilyByName(name string) (Family, bool) {
	name = strings.ToLower(name)
	for _, f := range families {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}

// Build constructs a pattern of the named family from a (possibly
// partial) parameter map: omitted keys take the schema defaults,
// unknown keys are rejected with the valid set in the error. A nil map
// builds the family's default configuration.
func Build(family string, env Env, params map[string]int) (Pattern, error) {
	f, ok := FamilyByName(family)
	if !ok {
		return nil, fmt.Errorf("traffic: unknown family %q (supported: %v)", family, FamilyNames())
	}
	if env.Terminals <= 0 {
		return nil, fmt.Errorf("traffic: family %q: terminal count %d must be positive", f.Name, env.Terminals)
	}
	full := make(map[string]int, len(f.Params))
	for _, p := range f.Params {
		full[p.Name] = p.Default
	}
	var unknown []string
	for k, v := range params {
		if _, ok := full[k]; !ok {
			unknown = append(unknown, k)
			continue
		}
		full[k] = v
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		valid := make([]string, len(f.Params))
		for i, p := range f.Params {
			valid[i] = p.Name
		}
		return nil, fmt.Errorf("traffic: family %q: unknown parameter(s) %v (valid: %v)", f.Name, unknown, valid)
	}
	return f.Build(env, full)
}
