package traffic

import (
	"strings"
	"testing"
)

func TestRegistryBuildsEveryFamily(t *testing.T) {
	d := testDF(t)
	env := Env{Terminals: d.Nodes(), Grouped: d, Seed: 7}
	for _, f := range Families() {
		if f.Name != strings.ToLower(f.Name) {
			t.Errorf("family %q is not lower-case", f.Name)
		}
		buildEnv := env
		if f.Name == "transpose" {
			buildEnv.Terminals = 64 // transpose needs a square count; 72 is not
		}
		p, err := Build(f.Name, buildEnv, nil)
		if err != nil {
			t.Errorf("Build(%q) with defaults: %v", f.Name, err)
			continue
		}
		if p.Name() == "" {
			t.Errorf("family %q built a pattern with an empty name", f.Name)
		}
		s := uint64(3)
		for i := 0; i < 500; i++ {
			src := int(next(&s) % uint64(buildEnv.Terminals))
			dst := p.Dest(src, next(&s))
			if dst < 0 || dst >= buildEnv.Terminals {
				t.Fatalf("family %q: destination %d out of range", f.Name, dst)
			}
		}
	}
}

func TestRegistryMatchesDirectConstruction(t *testing.T) {
	d := testDF(t)
	env := Env{Terminals: d.Nodes(), Grouped: d, Seed: 42}
	direct := map[string]Pattern{
		"ur":      NewUniformRandom(d.Nodes()),
		"wc":      NewWorstCase(d),
		"bitcomp": NewBitComplement(d.Nodes()),
		"perm":    NewPermutation(d.Nodes(), 42),
	}
	if g, err := NewGroupOffset(d, d.G/2); err == nil {
		direct["tornado"] = g
	}
	s := uint64(9)
	for name, want := range direct {
		got, err := Build(name, env, nil)
		if err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
		for i := 0; i < 2000; i++ {
			src := int(next(&s) % uint64(d.Nodes()))
			r := next(&s)
			if g, w := got.Dest(src, r), want.Dest(src, r); g != w {
				t.Fatalf("family %q: registry dest %d != direct dest %d (src=%d)", name, g, w, src)
			}
		}
	}
}

func TestRegistryLookupFoldsCase(t *testing.T) {
	for _, spelling := range []string{"UR", "ur", "Ur"} {
		if _, ok := FamilyByName(spelling); !ok {
			t.Errorf("FamilyByName(%q) did not resolve", spelling)
		}
	}
	if _, ok := FamilyByName("no-such-pattern"); ok {
		t.Error("unknown family resolved")
	}
}

func TestRegistryRejectsUnknownParams(t *testing.T) {
	d := testDF(t)
	env := Env{Terminals: d.Nodes(), Grouped: d}
	_, err := Build("hotspot", env, map[string]int{"heat": 3})
	if err == nil || !strings.Contains(err.Error(), "heat") {
		t.Errorf("unknown parameter not rejected with its name: %v", err)
	}
	if _, err := Build("hotspot", env, map[string]int{"pct": 140}); err == nil {
		t.Error("pct > 100 accepted")
	}
	if _, err := Build("groupoffset", env, map[string]int{"offset": 0}); err == nil {
		t.Error("offset 0 accepted")
	}
}

func TestRegistryNeedsGroupedMachine(t *testing.T) {
	env := Env{Terminals: 64}
	for _, name := range []string{"wc", "groupoffset", "tornado"} {
		if _, err := Build(name, env, nil); err == nil {
			t.Errorf("family %q built without a grouped machine", name)
		}
	}
}

// TestHotSpotUnbiasedAtScale pins the draw-split fix: with a hot-set
// size that does not divide 2^16, the old 16-bit selection slice skewed
// both the hot/uniform split and the member choice; the full-precision
// split must keep every hot member's share within a tight band.
func TestHotSpotUnbiasedAtScale(t *testing.T) {
	const n = 100000
	hot := []int{3, 77777, 99999}
	h, err := NewHotSpot(n, hot, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	s := uint64(17)
	const draws = 60000
	for i := 0; i < draws; i++ {
		d := h.Dest(1, next(&s))
		counts[d]++
	}
	hotTotal := 0
	for _, m := range hot {
		hotTotal += counts[m]
		share := float64(counts[m]) / draws
		if share < 0.17 || share > 0.23 {
			t.Errorf("hot member %d got share %.4f, want ~0.20", m, share)
		}
	}
	if frac := float64(hotTotal) / draws; frac < 0.57 || frac > 0.63 {
		t.Errorf("hot fraction %.4f, want ~0.60", frac)
	}
}
