// Package traffic provides the synthetic traffic patterns used by the
// paper's evaluation (Section 4.2) plus the standard patterns of Dally &
// Towles used for wider testing: uniform random, the dragonfly worst
// case (each node of group G_i sends to a random node of group G_i+1),
// bit complement, transpose, tornado, hot-spot and random permutation.
//
// A pattern maps a source terminal (plus a fresh random value for the
// randomized ones) to a destination terminal; it must never return the
// source itself unless the network has a single terminal.
package traffic

import (
	"fmt"

	"dragonfly/internal/topology"
)

// Grouped is the structural view the group-relative patterns need; both
// dragonfly variants of internal/topology implement it.
type Grouped interface {
	// Groups returns the group count.
	Groups() int
	// TerminalGroup returns the group a terminal belongs to.
	TerminalGroup(t int) int
	// TerminalsPerGroup returns the terminals attached to each group.
	TerminalsPerGroup() int
}

// UniformRandom sends each packet to a terminal chosen uniformly among
// all other terminals — the benign baseline (Figure 8(a)).
type UniformRandom struct {
	// N is the terminal count.
	N int
}

// NewUniformRandom returns uniform-random traffic over n terminals.
func NewUniformRandom(n int) *UniformRandom { return &UniformRandom{N: n} }

// Name implements sim.Traffic.
func (*UniformRandom) Name() string { return "UR" }

// Dest implements sim.Traffic.
func (u *UniformRandom) Dest(src int, rand uint64) int {
	if u.N <= 1 {
		return src
	}
	d := int(rand % uint64(u.N-1))
	if d >= src {
		d++
	}
	return d
}

// WorstCase is the adversarial pattern of Section 4.2 (Figure 8(b)):
// every node in group G_i sends to a random node in group G_i+1, so
// minimal routing funnels each group's entire load through the single
// global channel to the next group.
type WorstCase struct {
	d Grouped
}

// NewWorstCase returns the worst-case pattern for dragonfly d.
func NewWorstCase(d Grouped) *WorstCase { return &WorstCase{d: d} }

// Name implements sim.Traffic.
func (*WorstCase) Name() string { return "WC" }

// Dest implements sim.Traffic.
func (w *WorstCase) Dest(src int, rand uint64) int {
	perGroup := w.d.TerminalsPerGroup()
	g := (w.d.TerminalGroup(src) + 1) % w.d.Groups()
	return g*perGroup + int(rand%uint64(perGroup))
}

// GroupOffset generalises WorstCase: group G_i sends to random nodes of
// group G_i+Offset. Offset 1 is the paper's worst case; g/2 is the
// group-level tornado.
type GroupOffset struct {
	d      Grouped
	Offset int
}

// NewGroupOffset returns the group-offset pattern.
func NewGroupOffset(d Grouped, offset int) (*GroupOffset, error) {
	if offset%d.Groups() == 0 {
		return nil, fmt.Errorf("traffic: group offset %d maps groups to themselves (g=%d)", offset, d.Groups())
	}
	return &GroupOffset{d: d, Offset: offset}, nil
}

// Name implements sim.Traffic.
func (g *GroupOffset) Name() string { return fmt.Sprintf("GroupOffset(%d)", g.Offset) }

// Dest implements sim.Traffic.
func (g *GroupOffset) Dest(src int, rand uint64) int {
	perGroup := g.d.TerminalsPerGroup()
	grp := (g.d.TerminalGroup(src) + g.Offset) % g.d.Groups()
	return grp*perGroup + int(rand%uint64(perGroup))
}

// BitComplement sends terminal i to terminal N-1-i, a classic
// permutation pattern.
type BitComplement struct {
	// N is the terminal count.
	N int
}

// NewBitComplement returns bit-complement traffic over n terminals.
func NewBitComplement(n int) *BitComplement { return &BitComplement{N: n} }

// Name implements sim.Traffic.
func (*BitComplement) Name() string { return "BitComplement" }

// Dest implements sim.Traffic.
func (b *BitComplement) Dest(src int, _ uint64) int { return b.N - 1 - src }

// Transpose views terminal ids as 2-digit base-sqrt(N) numbers and swaps
// the digits, the matrix-transpose permutation.
type Transpose struct {
	side int
	n    int
}

// NewTranspose returns transpose traffic over n terminals; n must be a
// perfect square.
func NewTranspose(n int) (*Transpose, error) {
	s := topology.Sqrt(n)
	if s*s != n {
		return nil, fmt.Errorf("traffic: transpose needs a square terminal count (got %d)", n)
	}
	return &Transpose{side: s, n: n}, nil
}

// Name implements sim.Traffic.
func (*Transpose) Name() string { return "Transpose" }

// Dest implements sim.Traffic.
func (t *Transpose) Dest(src int, _ uint64) int {
	r, c := src/t.side, src%t.side
	return c*t.side + r
}

// HotSpot sends a fraction of traffic to a small set of hot terminals
// and the rest uniformly, a common congestion stressor.
type HotSpot struct {
	// N is the terminal count.
	N int
	// Hot is the set of hot destinations.
	Hot []int
	// Fraction in [0,1] of packets targeting a hot terminal.
	Fraction float64
	uniform  *UniformRandom
}

// NewHotSpot returns hot-spot traffic.
func NewHotSpot(n int, hot []int, fraction float64) (*HotSpot, error) {
	if len(hot) == 0 {
		return nil, fmt.Errorf("traffic: hot-spot needs at least one hot terminal")
	}
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("traffic: hot fraction %v out of [0,1]", fraction)
	}
	for _, h := range hot {
		if h < 0 || h >= n {
			return nil, fmt.Errorf("traffic: hot terminal %d out of range [0,%d)", h, n)
		}
	}
	return &HotSpot{N: n, Hot: append([]int(nil), hot...), Fraction: fraction, uniform: NewUniformRandom(n)}, nil
}

// Name implements sim.Traffic.
func (*HotSpot) Name() string { return "HotSpot" }

// Dest implements sim.Traffic.
func (h *HotSpot) Dest(src int, rand uint64) int {
	// Two decisions need randomness but only one draw arrives, so split
	// it the way the engine's RNG discipline prescribes: the selection
	// uses the draw's full 53-bit float precision (a 16-bit slice biases
	// both decisions once N or len(Hot) stops dividing 2^16), and the
	// destination choice uses an independent value derived by the
	// SplitMix64 finalizer.
	sel := float64(rand>>11) / float64(1<<53)
	r := mix64(rand)
	if sel < h.Fraction {
		return h.Hot[int(r%uint64(len(h.Hot)))]
	}
	return h.uniform.Dest(src, r)
}

// mix64 is the SplitMix64 finalizer (the same hash sim.Mix exports),
// used to derive a second independent value from one draw without the
// traffic layer depending on the engine package.
func mix64(v uint64) uint64 {
	v += 0x9e3779b97f4a7c15
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	return v ^ (v >> 31)
}

// Permutation applies a fixed random permutation of terminals, drawn
// once from the given seed — every source has exactly one destination.
type Permutation struct {
	perm []int
}

// NewPermutation returns a random-permutation pattern over n terminals.
func NewPermutation(n int, seed uint64) *Permutation {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s := seed
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}
	return &Permutation{perm: p}
}

// Name implements sim.Traffic.
func (*Permutation) Name() string { return "Permutation" }

// Dest implements sim.Traffic.
func (p *Permutation) Dest(src int, _ uint64) int { return p.perm[src] }
