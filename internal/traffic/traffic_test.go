package traffic

import (
	"testing"
	"testing/quick"

	"dragonfly/internal/topology"
)

func testDF(t *testing.T) *topology.Dragonfly {
	t.Helper()
	d, err := topology.NewDragonfly(2, 4, 2, 0)
	if err != nil {
		t.Fatalf("NewDragonfly: %v", err)
	}
	return d
}

// splitmix for test-side random values.
func next(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func TestUniformRandomNeverSelf(t *testing.T) {
	u := NewUniformRandom(72)
	s := uint64(7)
	for i := 0; i < 20000; i++ {
		src := int(next(&s) % 72)
		d := u.Dest(src, next(&s))
		if d == src {
			t.Fatalf("UR returned the source itself (src=%d)", src)
		}
		if d < 0 || d >= 72 {
			t.Fatalf("UR destination %d out of range", d)
		}
	}
}

func TestUniformRandomCoversAll(t *testing.T) {
	u := NewUniformRandom(16)
	seen := make(map[int]bool)
	s := uint64(3)
	for i := 0; i < 5000; i++ {
		seen[u.Dest(0, next(&s))] = true
	}
	if len(seen) != 15 {
		t.Errorf("UR from src 0 covered %d destinations, want 15", len(seen))
	}
}

func TestUniformRandomSingleTerminal(t *testing.T) {
	u := NewUniformRandom(1)
	if d := u.Dest(0, 12345); d != 0 {
		t.Errorf("single-terminal UR returned %d", d)
	}
}

func TestWorstCaseTargetsNextGroup(t *testing.T) {
	d := testDF(t)
	w := NewWorstCase(d)
	s := uint64(11)
	for src := 0; src < d.Nodes(); src++ {
		dst := w.Dest(src, next(&s))
		want := (d.TerminalGroup(src) + 1) % d.G
		if got := d.TerminalGroup(dst); got != want {
			t.Fatalf("WC from group %d landed in group %d, want %d",
				d.TerminalGroup(src), got, want)
		}
	}
}

func TestWorstCaseSpreadsWithinGroup(t *testing.T) {
	d := testDF(t)
	w := NewWorstCase(d)
	s := uint64(5)
	seen := make(map[int]bool)
	for i := 0; i < 2000; i++ {
		seen[w.Dest(0, next(&s))] = true
	}
	if len(seen) != d.A*d.P {
		t.Errorf("WC covered %d nodes of the target group, want %d", len(seen), d.A*d.P)
	}
}

func TestGroupOffset(t *testing.T) {
	d := testDF(t)
	g, err := NewGroupOffset(d, 4)
	if err != nil {
		t.Fatalf("NewGroupOffset: %v", err)
	}
	s := uint64(2)
	for src := 0; src < d.Nodes(); src += 7 {
		dst := g.Dest(src, next(&s))
		want := (d.TerminalGroup(src) + 4) % d.G
		if d.TerminalGroup(dst) != want {
			t.Fatalf("offset-4 landed in group %d, want %d", d.TerminalGroup(dst), want)
		}
	}
	if _, err := NewGroupOffset(d, 0); err == nil {
		t.Error("offset 0 accepted")
	}
	if _, err := NewGroupOffset(d, d.G); err == nil {
		t.Error("offset g accepted (maps groups to themselves)")
	}
}

func TestBitComplement(t *testing.T) {
	b := NewBitComplement(64)
	for src := 0; src < 64; src++ {
		d := b.Dest(src, 0)
		if d != 63-src {
			t.Fatalf("BitComplement(%d) = %d", src, d)
		}
		if b.Dest(d, 0) != src {
			t.Fatal("BitComplement not an involution")
		}
	}
}

func TestTranspose(t *testing.T) {
	tr, err := NewTranspose(64)
	if err != nil {
		t.Fatalf("NewTranspose: %v", err)
	}
	for src := 0; src < 64; src++ {
		d := tr.Dest(src, 0)
		if tr.Dest(d, 0) != src {
			t.Fatal("Transpose not an involution")
		}
	}
	if _, err := NewTranspose(60); err == nil {
		t.Error("non-square terminal count accepted")
	}
}

func TestHotSpot(t *testing.T) {
	h, err := NewHotSpot(100, []int{7, 9}, 0.5)
	if err != nil {
		t.Fatalf("NewHotSpot: %v", err)
	}
	s := uint64(13)
	hot := 0
	n := 20000
	for i := 0; i < n; i++ {
		d := h.Dest(3, next(&s))
		if d == 7 || d == 9 {
			hot++
		}
		if d < 0 || d >= 100 {
			t.Fatalf("destination %d out of range", d)
		}
	}
	frac := float64(hot) / float64(n)
	if frac < 0.45 || frac > 0.57 {
		t.Errorf("hot fraction %v, want ~0.5 (+ uniform hits)", frac)
	}
	if _, err := NewHotSpot(100, nil, 0.5); err == nil {
		t.Error("empty hot set accepted")
	}
	if _, err := NewHotSpot(100, []int{5}, 1.5); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := NewHotSpot(100, []int{200}, 0.5); err == nil {
		t.Error("out-of-range hot terminal accepted")
	}
}

func TestPermutationIsBijective(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 2
		p := NewPermutation(n, seed)
		seen := make([]bool, n)
		for src := 0; src < n; src++ {
			d := p.Dest(src, 0)
			if d < 0 || d >= n || seen[d] {
				return false
			}
			seen[d] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPermutationDeterministicPerSeed(t *testing.T) {
	a := NewPermutation(50, 42)
	b := NewPermutation(50, 42)
	c := NewPermutation(50, 43)
	same := true
	diff := false
	for i := 0; i < 50; i++ {
		if a.Dest(i, 0) != b.Dest(i, 0) {
			same = false
		}
		if a.Dest(i, 0) != c.Dest(i, 0) {
			diff = true
		}
	}
	if !same {
		t.Error("same seed gave different permutations")
	}
	if !diff {
		t.Error("different seeds gave the same permutation")
	}
}

func TestNames(t *testing.T) {
	d := testDF(t)
	g, _ := NewGroupOffset(d, 1)
	tr, _ := NewTranspose(64)
	hs, _ := NewHotSpot(10, []int{1}, 0.1)
	for _, p := range []interface{ Name() string }{
		NewUniformRandom(10), NewWorstCase(d), g, NewBitComplement(8), tr, hs, NewPermutation(8, 1),
	} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}
