package workload

import (
	"fmt"
	"math/bits"

	"dragonfly/internal/sim"
)

// Collective operation schedules.
const (
	// OpRing models a ring all-reduce: every terminal streams to its
	// ring successor in every phase (reduce-scatter and all-gather both
	// walk the same ring).
	OpRing = 0
	// OpTree models recursive doubling: in phase s each terminal
	// exchanges with its partner t XOR 2^(s mod ceil(log2 N)); partners
	// beyond the terminal count sit the phase out.
	OpTree = 1
	// OpAllToAll models a rotating all-to-all personalization: phase k
	// pairs terminal t with (t + 1 + k mod (N-1)) mod N, so over N-1
	// phases every terminal addresses every other exactly once.
	OpAllToAll = 2
)

// Collective is a phased collective-communication workload: time is
// sliced into fixed-length phases, and within a phase every terminal
// offers packets (at the load scalar's Bernoulli intensity) to the one
// partner its schedule assigns it. The partner is a pure function of
// (terminal, phase), so the source is stateless, snapshot-free, and
// identical across shard counts. Destinations are forced — the traffic
// pattern is bypassed for collective packets.
type Collective struct {
	terminals int
	op        int
	phaselen  int64
	steps     int // recursive-doubling rounds: ceil(log2(terminals))
}

// NewCollective builds a collective-phase source.
func NewCollective(terminals, op, phaselen int) (*Collective, error) {
	if op != OpRing && op != OpTree && op != OpAllToAll {
		return nil, fmt.Errorf("workload: collective op=%d is not 0 (ring), 1 (tree) or 2 (all-to-all)", op)
	}
	if phaselen < 1 {
		return nil, fmt.Errorf("workload: collective phaselen=%d must be >= 1 cycle", phaselen)
	}
	steps := bits.Len(uint(terminals - 1))
	if steps == 0 {
		steps = 1
	}
	return &Collective{terminals: terminals, op: op, phaselen: int64(phaselen), steps: steps}, nil
}

// Name implements sim.Source.
func (s *Collective) Name() string { return "collective" }

// Fingerprint implements sim.Source.
func (s *Collective) Fingerprint() string {
	return fmt.Sprintf("collective op=%d phaselen=%d", s.op, s.phaselen)
}

// LoadGated implements the engine's zero-load fast path.
func (s *Collective) LoadGated() bool { return true }

// Arrive implements sim.Source.
func (s *Collective) Arrive(t int, now int64, load float64, r *sim.RNG) (bool, int) {
	if r.Float64() >= load {
		return false, -1
	}
	p := s.partner(t, now/s.phaselen)
	if p < 0 {
		return false, -1 // this terminal sits the phase out
	}
	return true, p
}

// partner returns terminal t's peer in the given phase, or -1 when it
// idles.
func (s *Collective) partner(t int, phase int64) int {
	n := s.terminals
	if n < 2 {
		return -1
	}
	switch s.op {
	case OpRing:
		return (t + 1) % n
	case OpTree:
		p := t ^ (1 << (int(phase) % s.steps))
		if p >= n {
			return -1
		}
		return p
	default: // OpAllToAll
		return (t + 1 + int(phase%int64(n-1))) % n
	}
}

// StateWords implements sim.Source (stateless).
func (s *Collective) StateWords() int { return 0 }

// SaveState implements sim.Source.
func (s *Collective) SaveState(int, []uint64) {}

// LoadState implements sim.Source.
func (s *Collective) LoadState(int, []uint64) error { return nil }
