package workload

import (
	"fmt"

	"dragonfly/internal/sim"
)

// Drift is a time-drifting hot-spot: a contiguous block of hot
// terminals that relocates to a new pseudo-random position every
// period cycles. A configured percentage of offered packets is aimed
// at a uniformly chosen member of the current hot set; the rest defer
// to the network's traffic pattern. Unlike the static hotspot traffic
// family, the congestion point moves during the run, which exercises
// adaptive routing's ability to re-converge — and unlike a Source with
// per-terminal state, the hot set is a pure function of the cycle, so
// Drift is stateless and snapshots for free.
type Drift struct {
	terminals int
	hot       int
	pct       int
	period    int64
	fraction  float64
}

// NewDrift builds a drifting hot-spot source.
func NewDrift(terminals, hot, pct, period int) (*Drift, error) {
	if hot < 1 || hot > terminals {
		return nil, fmt.Errorf("workload: drift hot=%d out of [1,%d]", hot, terminals)
	}
	if pct < 0 || pct > 100 {
		return nil, fmt.Errorf("workload: drift pct=%d out of [0,100]", pct)
	}
	if period < 1 {
		return nil, fmt.Errorf("workload: drift period=%d must be >= 1 cycle", period)
	}
	return &Drift{
		terminals: terminals,
		hot:       hot,
		pct:       pct,
		period:    int64(period),
		fraction:  float64(pct) / 100,
	}, nil
}

// Name implements sim.Source.
func (s *Drift) Name() string { return "drift" }

// Fingerprint implements sim.Source.
func (s *Drift) Fingerprint() string {
	return fmt.Sprintf("drift hot=%d pct=%d period=%d", s.hot, s.pct, s.period)
}

// LoadGated implements the engine's zero-load fast path.
func (s *Drift) LoadGated() bool { return true }

// Arrive implements sim.Source: one gate draw against the load scalar,
// one selection draw (hot vs pattern), and — for hot packets — one
// member draw, all from the terminal's stream per the one-draw-per-
// decision RNG discipline.
func (s *Drift) Arrive(t int, now int64, load float64, r *sim.RNG) (bool, int) {
	if r.Float64() >= load {
		return false, -1
	}
	if r.Float64() >= s.fraction {
		return true, -1 // cold packet: the traffic pattern picks the destination
	}
	// The hot block's position is a hash of the drift epoch: every
	// period cycles it jumps somewhere new, identically for every
	// terminal and every shard count.
	root := int(sim.Mix(uint64(now/s.period)) % uint64(s.terminals))
	return true, (root + r.Intn(s.hot)) % s.terminals
}

// StateWords implements sim.Source (stateless).
func (s *Drift) StateWords() int { return 0 }

// SaveState implements sim.Source.
func (s *Drift) SaveState(int, []uint64) {}

// LoadState implements sim.Source.
func (s *Drift) LoadState(int, []uint64) error { return nil }
