package workload

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"dragonfly/internal/sim"
)

// Tenant is one job sharing a machine under a MultiTenant workload: a
// named set of terminals driven by its own arrival process.
type Tenant struct {
	// Name labels the tenant in fingerprints and telemetry.
	Name string
	// Source is the tenant's arrival process; its per-terminal state is
	// indexed by absolute terminal id, so build it over the machine's
	// full terminal count.
	Source sim.Source
	// Terminals are the member terminals, ascending and disjoint from
	// every other tenant's.
	Terminals []int
	// Confined redirects pattern-deferred destinations (Arrive's
	// dst < 0) to a uniformly chosen other member of the same tenant —
	// the slice-placement model, where a job's traffic stays inside its
	// slice. Unconfined tenants defer to the network traffic pattern.
	Confined bool
}

// MultiTenant composes per-tenant sources over a partition of the
// machine's terminals, the workload model behind the multi-tenant
// interference exhibit: each job gets a slice of the machine (in the
// SlicedDragonfly placement sense — group-aligned terminal ranges) and
// its own arrival process, and terminals outside every slice stay
// silent. Snapshot state is the union of the tenants' states, padded
// to the widest tenant.
type MultiTenant struct {
	tenants  []Tenant
	tenantOf []int32 // terminal -> tenant index, -1 when unassigned
	posOf    []int32 // terminal -> position in its tenant's member list
	words    int
	gated    bool
	fp       string
}

// NewMultiTenant builds a multi-tenant source over a machine with the
// given terminal count. Tenant terminal sets must be disjoint, sorted
// ascending and in range; a confined tenant needs at least two
// members.
func NewMultiTenant(terminals int, tenants []Tenant) (*MultiTenant, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("workload: multitenant needs at least one tenant")
	}
	m := &MultiTenant{
		tenants:  tenants,
		tenantOf: make([]int32, terminals),
		posOf:    make([]int32, terminals),
		gated:    true,
	}
	for t := range m.tenantOf {
		m.tenantOf[t] = -1
	}
	h := fnv.New64a()
	var fp strings.Builder
	fp.WriteString("multitenant[")
	for ti := range tenants {
		ten := &tenants[ti]
		if ten.Source == nil {
			return nil, fmt.Errorf("workload: tenant %q has no source", ten.Name)
		}
		if ten.Confined && len(ten.Terminals) < 2 {
			return nil, fmt.Errorf("workload: confined tenant %q needs at least 2 terminals, has %d", ten.Name, len(ten.Terminals))
		}
		if !sort.IntsAreSorted(ten.Terminals) {
			return nil, fmt.Errorf("workload: tenant %q terminals are not ascending", ten.Name)
		}
		for pos, t := range ten.Terminals {
			if t < 0 || t >= terminals {
				return nil, fmt.Errorf("workload: tenant %q terminal %d out of range [0,%d)", ten.Name, t, terminals)
			}
			if m.tenantOf[t] >= 0 {
				return nil, fmt.Errorf("workload: terminal %d belongs to both %q and %q",
					t, tenants[m.tenantOf[t]].Name, ten.Name)
			}
			m.tenantOf[t] = int32(ti)
			m.posOf[t] = int32(pos)
			fmt.Fprintf(h, "%d:%d\n", ti, t)
		}
		if w := ten.Source.StateWords(); w > m.words {
			m.words = w
		}
		g, ok := ten.Source.(interface{ LoadGated() bool })
		if !ok || !g.LoadGated() {
			m.gated = false
		}
		fmt.Fprintf(&fp, "%s:%s:confined=%t;", ten.Name, ten.Source.Fingerprint(), ten.Confined)
	}
	fmt.Fprintf(&fp, "members=%016x]", h.Sum64())
	m.fp = fp.String()
	return m, nil
}

// Name implements sim.Source.
func (m *MultiTenant) Name() string { return "multitenant" }

// Fingerprint implements sim.Source: tenant names, sub-source
// fingerprints, confinement and the exact member assignment all ride
// along.
func (m *MultiTenant) Fingerprint() string { return m.fp }

// LoadGated reports whether every tenant source is load-gated — only
// then may the engine skip the injection walk at zero load.
func (m *MultiTenant) LoadGated() bool { return m.gated }

// Arrive implements sim.Source: delegate to the owning tenant, then
// confine pattern-deferred destinations to the tenant's own slice.
func (m *MultiTenant) Arrive(t int, now int64, load float64, r *sim.RNG) (bool, int) {
	ti := m.tenantOf[t]
	if ti < 0 {
		return false, -1 // unassigned terminals stay silent
	}
	ten := &m.tenants[ti]
	fire, dst := ten.Source.Arrive(t, now, load, r)
	if !fire {
		return false, -1
	}
	if dst < 0 && ten.Confined {
		// Uniform over the slice, excluding self — the same skip-self
		// draw UniformRandom uses, over the member list.
		members := ten.Terminals
		k := int(r.Next() % uint64(len(members)-1))
		if k >= int(m.posOf[t]) {
			k++
		}
		dst = members[k]
	}
	return true, dst
}

// StateWords implements sim.Source: the widest tenant's word count
// (narrower tenants' words are zero-padded).
func (m *MultiTenant) StateWords() int { return m.words }

// SaveState implements sim.Source.
func (m *MultiTenant) SaveState(t int, out []uint64) {
	for i := range out {
		out[i] = 0
	}
	if ti := m.tenantOf[t]; ti >= 0 {
		src := m.tenants[ti].Source
		src.SaveState(t, out[:src.StateWords()])
	}
}

// LoadState implements sim.Source.
func (m *MultiTenant) LoadState(t int, in []uint64) error {
	ti := m.tenantOf[t]
	if ti < 0 {
		return nil
	}
	src := m.tenants[ti].Source
	return src.LoadState(t, in[:src.StateWords()])
}
