package workload

import (
	"fmt"
	"math"

	"dragonfly/internal/sim"
)

// maxDwell caps a drawn dwell time. The Pareto tail is heavy enough to
// produce astronomically long phases at low probability; capping keeps
// every run's burst structure observable within realistic cycle budgets
// without measurably moving the mean.
const maxDwell = 1 << 20

// OnOff is a two-state bursty arrival process: each terminal
// alternates independently between an ON phase, during which it offers
// packets at an elevated rate, and a silent OFF phase. Dwell times are
// drawn from the terminal's own RNG stream — exponential or Pareto
// (alpha = 1.5, heavy-tailed) around the configured means — so the
// burst structure is deterministic per seed and survives snapshots.
// The ON-phase rate is load*(on+off)/on (capped at 1), which keeps the
// long-run offered load equal to the load scalar: sweeps and
// saturation thresholds stay comparable with Bernoulli runs of the
// same load.
type OnOff struct {
	onMean, offMean int
	pareto          bool
	scale           float64 // (on+off)/on, the ON-phase load multiplier
	// state holds two words per terminal: the phase (0 = OFF, 1 = ON)
	// and the remaining cycles of the current dwell.
	state []uint64
}

// NewOnOff builds an ON/OFF source for the given terminal count with
// the given mean dwell times in cycles.
func NewOnOff(terminals, onMean, offMean int, pareto bool) (*OnOff, error) {
	if onMean < 1 || offMean < 1 {
		return nil, fmt.Errorf("workload: onoff dwell means must be >= 1 cycle (on=%d, off=%d)", onMean, offMean)
	}
	if onMean > maxDwell || offMean > maxDwell {
		return nil, fmt.Errorf("workload: onoff dwell means must be <= %d cycles (on=%d, off=%d)", maxDwell, onMean, offMean)
	}
	return &OnOff{
		onMean:  onMean,
		offMean: offMean,
		pareto:  pareto,
		scale:   float64(onMean+offMean) / float64(onMean),
		state:   make([]uint64, 2*terminals),
	}, nil
}

// Name implements sim.Source.
func (s *OnOff) Name() string { return "onoff" }

// Fingerprint implements sim.Source.
func (s *OnOff) Fingerprint() string {
	return fmt.Sprintf("onoff on=%d off=%d pareto=%t", s.onMean, s.offMean, s.pareto)
}

// LoadGated implements the engine's zero-load fast path: a non-positive
// load silences the source (and freezes dwell state) entirely.
func (s *OnOff) LoadGated() bool { return true }

// Arrive implements sim.Source. Terminals start with an ON dwell drawn
// on their first cycle, desynchronised by their per-terminal streams.
func (s *OnOff) Arrive(t int, now int64, load float64, r *sim.RNG) (bool, int) {
	st := s.state[2*t : 2*t+2 : 2*t+2]
	for st[1] == 0 {
		st[0] ^= 1
		mean := s.offMean
		if st[0] == 1 {
			mean = s.onMean
		}
		st[1] = s.dwell(mean, r)
	}
	st[1]--
	if st[0] == 0 {
		return false, -1
	}
	p := load * s.scale
	if r.Float64() >= p {
		return false, -1
	}
	return true, -1
}

// dwell draws one dwell time around the given mean, in [1, maxDwell].
func (s *OnOff) dwell(mean int, r *sim.RNG) uint64 {
	u := r.Float64() // in [0,1): 1-u is in (0,1], so the logs/powers below are finite
	var d float64
	if s.pareto {
		// Pareto with alpha = 1.5: mean = xm*alpha/(alpha-1) = 3*xm.
		xm := float64(mean) / 3
		d = xm / math.Pow(1-u, 1/1.5)
	} else {
		d = -float64(mean) * math.Log(1-u)
	}
	if d < 1 {
		return 1
	}
	if d > maxDwell {
		return maxDwell
	}
	return uint64(d)
}

// StateWords implements sim.Source.
func (s *OnOff) StateWords() int { return 2 }

// SaveState implements sim.Source.
func (s *OnOff) SaveState(t int, out []uint64) {
	out[0] = s.state[2*t]
	out[1] = s.state[2*t+1]
}

// LoadState implements sim.Source.
func (s *OnOff) LoadState(t int, in []uint64) error {
	if in[0] > 1 {
		return fmt.Errorf("phase word %d is not 0/1", in[0])
	}
	if in[1] > maxDwell {
		return fmt.Errorf("dwell remainder %d over the %d cap", in[1], uint64(maxDwell))
	}
	s.state[2*t] = in[0]
	s.state[2*t+1] = in[1]
	return nil
}
