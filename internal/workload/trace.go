package workload

import (
	"errors"
	"fmt"
	"hash/fnv"

	"dragonfly/internal/sim"
)

// The trace format is line-oriented text, one flow per line:
//
//	cycle src dst count
//
// where cycle is the earliest cycle the flow may start injecting, src
// and dst are terminal ids, and count is the number of packets the
// flow carries (injected on consecutive cycles, subject to the
// one-packet-per-terminal-per-cycle injection bandwidth — a flow that
// starts late because its predecessor was still draining simply slides
// back, which keeps replay deterministic). '#' starts a comment, blank
// lines are ignored, and each source's flows must appear in
// nondecreasing cycle order so replay is a single pointer walk.

// ErrBadTrace is the sentinel every trace-parse failure wraps; match it
// with errors.Is. The concrete error is always a *TraceError carrying
// the offending line.
var ErrBadTrace = errors.New("workload: bad trace")

// TraceError describes a rejected trace with the 1-based line it
// failed on (0 when the failure is not tied to one line).
type TraceError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *TraceError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("workload: trace line %d: %s", e.Line, e.Msg)
	}
	return "workload: trace: " + e.Msg
}

// Unwrap makes errors.Is(err, ErrBadTrace) hold.
func (e *TraceError) Unwrap() error { return ErrBadTrace }

// Decode guards: a hostile trace must not drive memory or cycle cost
// past what its own byte length justifies.
const (
	// maxTraceFlows caps the flow count of one trace.
	maxTraceFlows = 1 << 22
	// maxFlowCount caps one flow's packet count.
	maxFlowCount = 1 << 20
	// maxTraceCycle caps flow start cycles.
	maxTraceCycle = int64(1) << 40
)

// Flow is one trace entry: count packets from a source terminal to
// dst, injectable from cycle At.
type Flow struct {
	At    int64
	Dst   int32
	Count uint32
}

// Trace is a parsed flow trace, indexed by source terminal.
type Trace struct {
	terminals int
	flows     [][]Flow // per source, in nondecreasing At order
	total     int
	hash      uint64 // FNV-64a over the canonical flow encoding
}

// ParseTrace parses the timestamped-flow format over a machine with
// the given terminal count. Failures are *TraceError wrapping
// ErrBadTrace — never a panic, and never an allocation driven by
// anything but the input's actual size.
func ParseTrace(data []byte, terminals int) (*Trace, error) {
	if terminals <= 0 {
		return nil, &TraceError{Msg: fmt.Sprintf("terminal count %d must be positive", terminals)}
	}
	tr := &Trace{
		terminals: terminals,
		flows:     make([][]Flow, terminals),
	}
	h := fnv.New64a()
	line := 0
	for len(data) > 0 {
		line++
		// Take one line.
		eol := len(data)
		for i, c := range data {
			if c == '\n' {
				eol = i
				break
			}
		}
		text := data[:eol]
		if eol < len(data) {
			data = data[eol+1:]
		} else {
			data = nil
		}
		// Strip comments and skip blank lines.
		for i, c := range text {
			if c == '#' {
				text = text[:i]
				break
			}
		}
		fields, ok := splitFields(text)
		if !ok {
			return nil, &TraceError{Line: line, Msg: "line does not have exactly 4 fields (cycle src dst count)"}
		}
		if fields == nil {
			continue
		}
		at, ok1 := parseInt(fields[0])
		src, ok2 := parseInt(fields[1])
		dst, ok3 := parseInt(fields[2])
		count, ok4 := parseInt(fields[3])
		if !ok1 || !ok2 || !ok3 || !ok4 {
			return nil, &TraceError{Line: line, Msg: "fields must be non-negative decimal integers"}
		}
		switch {
		case at > maxTraceCycle:
			return nil, &TraceError{Line: line, Msg: fmt.Sprintf("cycle %d over the %d cap", at, maxTraceCycle)}
		case src >= int64(terminals):
			return nil, &TraceError{Line: line, Msg: fmt.Sprintf("source terminal %d out of range [0,%d)", src, terminals)}
		case dst >= int64(terminals):
			return nil, &TraceError{Line: line, Msg: fmt.Sprintf("destination terminal %d out of range [0,%d)", dst, terminals)}
		case count < 1:
			return nil, &TraceError{Line: line, Msg: "flow count must be >= 1"}
		case count > maxFlowCount:
			return nil, &TraceError{Line: line, Msg: fmt.Sprintf("flow count %d over the %d cap", count, maxFlowCount)}
		case tr.total >= maxTraceFlows:
			return nil, &TraceError{Line: line, Msg: fmt.Sprintf("more than %d flows", maxTraceFlows)}
		}
		fl := tr.flows[src]
		if len(fl) > 0 && fl[len(fl)-1].At > at {
			return nil, &TraceError{Line: line,
				Msg: fmt.Sprintf("cycle %d regresses from %d for source %d (flows must be nondecreasing per source)", at, fl[len(fl)-1].At, src)}
		}
		tr.flows[src] = append(fl, Flow{At: at, Dst: int32(dst), Count: uint32(count)})
		tr.total++
		fmt.Fprintf(h, "%d %d %d %d\n", at, src, dst, count)
	}
	tr.hash = h.Sum64()
	return tr, nil
}

// splitFields splits a trace line into exactly 4 whitespace-separated
// fields. It returns (nil, true) for an all-blank line and (nil,
// false) for any other field count.
func splitFields(line []byte) ([][]byte, bool) {
	var fields [][]byte
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
			i++
		}
		if i == len(line) {
			break
		}
		j := i
		for j < len(line) && line[j] != ' ' && line[j] != '\t' && line[j] != '\r' {
			j++
		}
		if len(fields) == 4 {
			return nil, false
		}
		fields = append(fields, line[i:j])
		i = j
	}
	if len(fields) == 0 {
		return nil, true
	}
	if len(fields) != 4 {
		return nil, false
	}
	return fields, true
}

// parseInt parses a non-negative decimal integer without allocating,
// rejecting empty fields, non-digits and overflow.
func parseInt(b []byte) (int64, bool) {
	if len(b) == 0 || len(b) > 18 {
		return 0, false
	}
	var v int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int64(c-'0')
	}
	return v, true
}

// Terminals returns the terminal count the trace was parsed against.
func (tr *Trace) Terminals() int { return tr.terminals }

// Flows returns the total flow count.
func (tr *Trace) Flows() int { return tr.total }

// Hash returns the FNV-64a digest of the canonical flow encoding,
// stable across reformatting (comments and spacing don't count).
func (tr *Trace) Hash() uint64 { return tr.hash }

// TraceReplay replays a parsed Trace: each terminal walks its flow
// list with a (flow index, packets remaining) cursor, injecting one
// packet per cycle while a flow is due. The load scalar is ignored —
// the trace itself is the schedule — so replay also runs during
// nominally zero-load phases.
type TraceReplay struct {
	tr *Trace
	// state holds two words per terminal: flow index and remaining
	// packets of the current flow (0 = the flow at index is not yet
	// started).
	state []uint64
}

// NewTraceReplay builds a replay source for tr over a machine with the
// given terminal count (which must match the count the trace was
// parsed against — flows index terminals directly).
func NewTraceReplay(tr *Trace, terminals int) (*TraceReplay, error) {
	if tr == nil {
		return nil, fmt.Errorf("workload: nil trace")
	}
	if tr.terminals != terminals {
		return nil, fmt.Errorf("workload: trace is over %d terminals, machine has %d", tr.terminals, terminals)
	}
	return &TraceReplay{tr: tr, state: make([]uint64, 2*terminals)}, nil
}

// Name implements sim.Source.
func (s *TraceReplay) Name() string { return "trace" }

// Fingerprint implements sim.Source: the trace content digest rides
// along, so a resume against a different trace is refused.
func (s *TraceReplay) Fingerprint() string {
	return fmt.Sprintf("trace n=%d flows=%d h=%016x", s.tr.terminals, s.tr.total, s.tr.hash)
}

// Arrive implements sim.Source. It consumes no RNG draws: replay is a
// pure function of the trace and the cycle.
func (s *TraceReplay) Arrive(t int, now int64, load float64, r *sim.RNG) (bool, int) {
	st := s.state[2*t : 2*t+2 : 2*t+2]
	flows := s.tr.flows[t]
	idx := int(st[0])
	if st[1] == 0 {
		if idx >= len(flows) || now < flows[idx].At {
			return false, -1
		}
		st[1] = uint64(flows[idx].Count)
	}
	dst := int(flows[idx].Dst)
	st[1]--
	if st[1] == 0 {
		st[0] = uint64(idx + 1)
	}
	return true, dst
}

// StateWords implements sim.Source.
func (s *TraceReplay) StateWords() int { return 2 }

// SaveState implements sim.Source.
func (s *TraceReplay) SaveState(t int, out []uint64) {
	out[0] = s.state[2*t]
	out[1] = s.state[2*t+1]
}

// LoadState implements sim.Source.
func (s *TraceReplay) LoadState(t int, in []uint64) error {
	flows := s.tr.flows[t]
	idx, rem := in[0], in[1]
	if idx > uint64(len(flows)) {
		return fmt.Errorf("flow index %d past the %d flows of terminal %d", idx, len(flows), t)
	}
	if rem > 0 {
		if idx == uint64(len(flows)) {
			return fmt.Errorf("%d packets remaining past the last flow of terminal %d", rem, t)
		}
		if rem > uint64(flows[idx].Count) {
			return fmt.Errorf("%d packets remaining of a %d-packet flow", rem, flows[idx].Count)
		}
	}
	s.state[2*t] = idx
	s.state[2*t+1] = rem
	return nil
}
