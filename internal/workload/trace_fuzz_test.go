package workload

import (
	"errors"
	"strings"
	"testing"

	"dragonfly/internal/sim"
)

// FuzzTraceParse drives arbitrary bytes through ParseTrace with the
// same contract FuzzSnapshotDecode pins for the engine decoder: every
// rejection is a typed *TraceError wrapping ErrBadTrace — never a
// panic — and a hostile input cannot allocate beyond what its own
// length justifies (the flow/count/cycle caps). Anything accepted must
// replay cleanly: NewTraceReplay succeeds and a bounded walk of every
// terminal's Arrive stays in range.
func FuzzTraceParse(f *testing.F) {
	f.Add([]byte("0 0 3 2\n5 1 0 1\n"), 8)
	f.Add([]byte("# comment only\n\n"), 4)
	f.Add([]byte("10 3 3 1\n10 3 2 1\n11 3 1 1\n"), 4)
	f.Add([]byte("1 2 3\n"), 4)
	f.Add([]byte("999999999999999999 0 0 1\n"), 1)
	f.Add([]byte(strings.Repeat("7 0 1 9\n", 64)), 2)
	f.Add([]byte("5 0 1 1\n3 0 1 1\n"), 2)
	f.Fuzz(func(t *testing.T, data []byte, terminals int) {
		terminals %= 64
		tr, err := ParseTrace(data, terminals)
		if err != nil {
			var te *TraceError
			if !errors.Is(err, ErrBadTrace) || !errors.As(err, &te) {
				t.Fatalf("rejection %v is not a *TraceError wrapping ErrBadTrace", err)
			}
			return
		}
		rep, err := NewTraceReplay(tr, terminals)
		if err != nil {
			t.Fatalf("accepted trace refused by NewTraceReplay: %v", err)
		}
		for term := 0; term < terminals; term++ {
			r := sim.NewRNG(1, uint64(term))
			for now := int64(0); now < 64; now++ {
				fire, dst := rep.Arrive(term, now, 1.0, &r)
				if fire && (dst < 0 || dst >= terminals) {
					t.Fatalf("replay produced destination %d over %d terminals", dst, terminals)
				}
			}
		}
	})
}
