// Package workload provides the arrival processes that drive the
// engine's per-terminal injection: Bernoulli (the backward-compatible
// default), ON/OFF bursty sources with seeded exponential or Pareto
// dwell times, a time-drifting hot-spot, collective communication
// phases (ring/tree all-reduce, all-to-all), and replay of recorded
// traces in a simple timestamped-flow format. Every source implements
// sim.Source — deterministic per terminal, snapshot-able word for word,
// allocation-free on the steady path — and is reachable through a
// Families/Build registry mirroring topology.Families, so CLIs and the
// job service can compose workloads from (family, integer parameters)
// without package-level switches.
package workload

import (
	"fmt"
	"sort"
	"strings"

	"dragonfly/internal/sim"
)

// Env carries the context a source is built against.
type Env struct {
	// Terminals is the machine's terminal count (required, > 0).
	Terminals int
	// Seed is the system seed; sources draw all randomness from the
	// engine's per-terminal RNG streams, so Seed only feeds identity
	// derivation, never a private generator.
	Seed uint64
	// Trace is the parsed flow trace, required by (and only by) the
	// "trace" family.
	Trace *Trace
}

// ParamSpec describes one integer parameter of a workload family,
// mirroring topology.ParamSpec and traffic.ParamSpec.
type ParamSpec struct {
	// Name is the parameter key accepted by Family.Build.
	Name string `json:"name"`
	// Doc is a one-line description.
	Doc string `json:"doc"`
	// Default is the value used when the key is omitted.
	Default int `json:"default"`
}

// Family is one registered arrival-process family.
type Family struct {
	// Name is the registry key ("bernoulli", "onoff", ...), lower-case;
	// lookups fold case.
	Name string
	// Doc is a one-line description of the family.
	Doc string
	// Params is the parameter schema, in canonical order.
	Params []ParamSpec
	// Build constructs the source from a complete parameter map (every
	// key of Params present; the package-level Build applies defaults).
	Build func(env Env, params map[string]int) (sim.Source, error)
}

var families = []Family{
	{
		Name: "bernoulli",
		Doc:  "memoryless injection: each terminal offers a packet with probability load every cycle (the legacy default)",
		Build: func(Env, map[string]int) (sim.Source, error) {
			return sim.DefaultSource(), nil
		},
	},
	{
		Name: "onoff",
		Doc:  "two-state bursty injection: seeded ON/OFF dwell times, ON bursts scaled so the long-run offered load stays at the load scalar",
		Params: []ParamSpec{
			{Name: "on", Doc: "mean ON-dwell in cycles", Default: 100},
			{Name: "off", Doc: "mean OFF-dwell in cycles", Default: 300},
			{Name: "pareto", Doc: "dwell distribution: 0 = exponential, 1 = Pareto (alpha=1.5, heavy-tailed)", Default: 0},
		},
		Build: func(env Env, p map[string]int) (sim.Source, error) {
			return NewOnOff(env.Terminals, p["on"], p["off"], p["pareto"] != 0)
		},
	},
	{
		Name: "drift",
		Doc:  "time-drifting hot-spot: a contiguous hot set moves to a new pseudo-random position every period cycles; cold packets defer to the traffic pattern",
		Params: []ParamSpec{
			{Name: "hot", Doc: "number of hot terminals", Default: 1},
			{Name: "pct", Doc: "percentage of packets aimed at the hot set, in [0,100]", Default: 50},
			{Name: "period", Doc: "cycles between hot-set moves", Default: 1000},
		},
		Build: func(env Env, p map[string]int) (sim.Source, error) {
			return NewDrift(env.Terminals, p["hot"], p["pct"], p["period"])
		},
	},
	{
		Name: "collective",
		Doc:  "phased collective: every terminal sends to its phase partner (ring all-reduce, recursive-doubling tree, or rotating all-to-all) at the load scalar's intensity",
		Params: []ParamSpec{
			{Name: "op", Doc: "collective schedule: 0 = ring all-reduce, 1 = recursive-doubling tree, 2 = rotating all-to-all", Default: 0},
			{Name: "phaselen", Doc: "cycles per collective phase", Default: 200},
		},
		Build: func(env Env, p map[string]int) (sim.Source, error) {
			return NewCollective(env.Terminals, p["op"], p["phaselen"])
		},
	},
	{
		Name: "trace",
		Doc:  "replay of a recorded flow trace (lines of \"cycle src dst count\"); ignores the load scalar",
		Build: func(env Env, _ map[string]int) (sim.Source, error) {
			if env.Trace == nil {
				return nil, fmt.Errorf("workload: family \"trace\" needs a parsed trace (Env.Trace)")
			}
			return NewTraceReplay(env.Trace, env.Terminals)
		},
	},
}

// Families returns the registered workload families in listing order.
func Families() []Family {
	out := make([]Family, len(families))
	copy(out, families)
	return out
}

// FamilyNames returns the registered family names in order.
func FamilyNames() []string {
	names := make([]string, len(families))
	for i, f := range families {
		names[i] = f.Name
	}
	return names
}

// FamilyByName looks up a registered family, folding case.
func FamilyByName(name string) (Family, bool) {
	name = strings.ToLower(name)
	for _, f := range families {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}

// Build constructs a source of the named family from a (possibly
// partial) parameter map: omitted keys take the schema defaults,
// unknown keys are rejected with the valid set in the error. A nil map
// builds the family's default configuration.
func Build(family string, env Env, params map[string]int) (sim.Source, error) {
	f, ok := FamilyByName(family)
	if !ok {
		return nil, fmt.Errorf("workload: unknown family %q (supported: %v)", family, FamilyNames())
	}
	if env.Terminals <= 0 {
		return nil, fmt.Errorf("workload: family %q: terminal count %d must be positive", f.Name, env.Terminals)
	}
	full := make(map[string]int, len(f.Params))
	for _, p := range f.Params {
		full[p.Name] = p.Default
	}
	var unknown []string
	for k, v := range params {
		if _, ok := full[k]; !ok {
			unknown = append(unknown, k)
			continue
		}
		full[k] = v
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		valid := make([]string, len(f.Params))
		for i, p := range f.Params {
			valid[i] = p.Name
		}
		return nil, fmt.Errorf("workload: family %q: unknown parameter(s) %v (valid: %v)", f.Name, unknown, valid)
	}
	return f.Build(env, full)
}
