package workload

import (
	"errors"
	"strings"
	"testing"

	"dragonfly/internal/sim"
)

func TestRegistryBuildsEveryFamily(t *testing.T) {
	tr, err := ParseTrace([]byte("10 0 5 3\n20 1 6 2\n"), 16)
	if err != nil {
		t.Fatal(err)
	}
	env := Env{Terminals: 16, Seed: 7, Trace: tr}
	for _, f := range Families() {
		if f.Name != strings.ToLower(f.Name) {
			t.Errorf("family %q is not lower-case", f.Name)
		}
		s, err := Build(f.Name, env, nil)
		if err != nil {
			t.Errorf("Build(%q) with defaults: %v", f.Name, err)
			continue
		}
		if s.Name() == "" || s.Fingerprint() == "" {
			t.Errorf("family %q: empty name or fingerprint", f.Name)
		}
		if w := s.StateWords(); w < 0 || w > 8 {
			t.Errorf("family %q: StateWords %d out of the engine's [0,8]", f.Name, w)
		}
	}
	if _, err := Build("trace", Env{Terminals: 16}, nil); err == nil {
		t.Error("trace family built without a trace")
	}
	if _, err := Build("no-such-source", env, nil); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := Build("onoff", env, map[string]int{"burst": 3}); err == nil {
		t.Error("unknown parameter accepted")
	}
	if _, ok := FamilyByName("Bernoulli"); !ok {
		t.Error("FamilyByName does not fold case")
	}
}

// drive runs a source over the given cycles for one terminal and
// returns the injected (cycle, dst) pairs. dst -1 means
// pattern-deferred.
func drive(t *testing.T, s sim.Source, term int, cycles int64, load float64, seed uint64) (fired []int64, dsts []int) {
	t.Helper()
	r := sim.NewRNG(seed, uint64(term))
	for now := int64(0); now < cycles; now++ {
		fire, dst := s.Arrive(term, now, load, &r)
		if fire {
			fired = append(fired, now)
			dsts = append(dsts, dst)
		}
	}
	return fired, dsts
}

func TestOnOffLongRunLoadMatchesScalar(t *testing.T) {
	for _, pareto := range []bool{false, true} {
		s, err := NewOnOff(4, 120, 360, pareto)
		if err != nil {
			t.Fatal(err)
		}
		const cycles, load = 400000, 0.2
		fired, _ := drive(t, s, 1, cycles, load, 11)
		rate := float64(len(fired)) / cycles
		if rate < 0.15 || rate > 0.25 {
			t.Errorf("pareto=%t: long-run rate %.4f, want ~%.2f", pareto, rate, load)
		}
	}
}

func TestOnOffBurstsAreBursty(t *testing.T) {
	// With mean dwells 100 ON / 900 OFF the ON-phase rate is 10x load:
	// a windowed count must show both near-silent and elevated windows.
	s, err := NewOnOff(2, 100, 900, false)
	if err != nil {
		t.Fatal(err)
	}
	fired, _ := drive(t, s, 0, 100000, 0.05, 3)
	window := make(map[int64]int)
	for _, c := range fired {
		window[c/500]++
	}
	lo, hi := 1 << 30, 0
	for w := int64(0); w < 200; w++ {
		n := window[w]
		if n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	// Bernoulli at 0.05 over 500 cycles gives ~25 +- 15; bursty windows
	// must swing far wider.
	if lo > 5 || hi < 100 {
		t.Errorf("window counts span [%d,%d]; want bursts (min <= 5, max >= 100)", lo, hi)
	}
}

func TestOnOffStateRoundTrip(t *testing.T) {
	a, _ := NewOnOff(4, 50, 150, true)
	b, _ := NewOnOff(4, 50, 150, true)
	ra := sim.NewRNG(9, 2)
	for now := int64(0); now < 5000; now++ {
		a.Arrive(2, now, 0.3, &ra)
	}
	var buf [2]uint64
	a.SaveState(2, buf[:])
	if err := b.LoadState(2, buf[:]); err != nil {
		t.Fatal(err)
	}
	rb := ra // copy the RNG state: b continues a's stream
	for now := int64(5000); now < 10000; now++ {
		fa, da := a.Arrive(2, now, 0.3, &ra)
		fb, db := b.Arrive(2, now, 0.3, &rb)
		if fa != fb || da != db {
			t.Fatalf("cycle %d: restored source diverged (%v,%d) vs (%v,%d)", now, fa, da, fb, db)
		}
	}
	if err := b.LoadState(0, []uint64{2, 0}); err == nil {
		t.Error("phase word 2 accepted")
	}
	if err := b.LoadState(0, []uint64{1, 1 << 40}); err == nil {
		t.Error("absurd dwell remainder accepted")
	}
}

func TestCollectivePartnerSchedules(t *testing.T) {
	const n = 12
	for _, op := range []int{OpRing, OpTree, OpAllToAll} {
		s, err := NewCollective(n, op, 10)
		if err != nil {
			t.Fatal(err)
		}
		for term := 0; term < n; term++ {
			r := sim.NewRNG(1, uint64(term))
			for now := int64(0); now < 500; now++ {
				fire, dst := s.Arrive(term, now, 1.0, &r)
				if !fire {
					if op != OpTree {
						t.Fatalf("op %d: terminal %d idle at full load", op, term)
					}
					continue
				}
				if dst < 0 || dst >= n || dst == term {
					t.Fatalf("op %d: partner %d invalid for terminal %d", op, dst, term)
				}
			}
		}
	}
	// All-to-all must pair every terminal with every other across N-1
	// phases.
	s, _ := NewCollective(n, OpAllToAll, 1)
	seen := map[int]bool{}
	r := sim.NewRNG(1, 0)
	for now := int64(0); now < n-1; now++ {
		_, dst := s.Arrive(0, now, 1.0, &r)
		seen[dst] = true
	}
	if len(seen) != n-1 {
		t.Errorf("all-to-all covered %d partners, want %d", len(seen), n-1)
	}
	if _, err := NewCollective(n, 9, 10); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestDriftMovesTheHotSpot(t *testing.T) {
	const n, period = 64, 1000
	s, err := NewDrift(n, 4, 100, period)
	if err != nil {
		t.Fatal(err)
	}
	epochDsts := make(map[int64]map[int]bool)
	r := sim.NewRNG(5, 1)
	for now := int64(0); now < 4*period; now++ {
		fire, dst := s.Arrive(1, now, 1.0, &r)
		if !fire || dst < 0 {
			t.Fatalf("pct=100 drift deferred at cycle %d", now)
		}
		e := now / period
		if epochDsts[e] == nil {
			epochDsts[e] = map[int]bool{}
		}
		epochDsts[e][dst] = true
	}
	moved := false
	for e := int64(1); e < 4; e++ {
		for d := range epochDsts[e] {
			if !epochDsts[0][d] {
				moved = true
			}
		}
		if len(epochDsts[e]) > 4 {
			t.Errorf("epoch %d hot set has %d members, want <= 4", e, len(epochDsts[e]))
		}
	}
	if !moved {
		t.Error("hot set never moved across epochs")
	}
}

func TestMultiTenantConfinement(t *testing.T) {
	const n = 16
	a := []int{0, 1, 2, 3, 4, 5, 6, 7}
	b := []int{8, 9, 10, 11}
	onoff, _ := NewOnOff(n, 50, 50, false)
	mt, err := NewMultiTenant(n, []Tenant{
		{Name: "steady", Source: sim.DefaultSource(), Terminals: a, Confined: true},
		{Name: "bursty", Source: onoff, Terminals: b, Confined: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !mt.LoadGated() {
		t.Error("all-gated tenants should gate the composite")
	}
	if mt.StateWords() != 2 {
		t.Errorf("StateWords %d, want the widest tenant's 2", mt.StateWords())
	}
	inSlice := func(set []int, d int) bool {
		for _, m := range set {
			if m == d {
				return true
			}
		}
		return false
	}
	for term := 0; term < n; term++ {
		r := sim.NewRNG(3, uint64(term))
		for now := int64(0); now < 3000; now++ {
			fire, dst := mt.Arrive(term, now, 0.5, &r)
			if !fire {
				continue
			}
			switch {
			case term >= 12:
				t.Fatalf("unassigned terminal %d injected", term)
			case term < 8 && (!inSlice(a, dst) || dst == term):
				t.Fatalf("tenant A terminal %d sent to %d, outside its slice", term, dst)
			case term >= 8 && term < 12 && (!inSlice(b, dst) || dst == term):
				t.Fatalf("tenant B terminal %d sent to %d, outside its slice", term, dst)
			}
		}
	}
	// Validation.
	if _, err := NewMultiTenant(n, nil); err == nil {
		t.Error("empty tenant list accepted")
	}
	if _, err := NewMultiTenant(n, []Tenant{
		{Name: "x", Source: sim.DefaultSource(), Terminals: []int{1}, Confined: true},
	}); err == nil {
		t.Error("single-terminal confined tenant accepted")
	}
	if _, err := NewMultiTenant(n, []Tenant{
		{Name: "x", Source: sim.DefaultSource(), Terminals: []int{1, 2}},
		{Name: "y", Source: sim.DefaultSource(), Terminals: []int{2, 3}},
	}); err == nil {
		t.Error("overlapping tenants accepted")
	}
	if _, err := NewMultiTenant(n, []Tenant{
		{Name: "x", Source: sim.DefaultSource(), Terminals: []int{3, 1}},
	}); err == nil {
		t.Error("unsorted member list accepted")
	}
}

func TestParseTraceAcceptsAndIndexes(t *testing.T) {
	src := `
# packets for a tiny machine
0 0 3 2
5 1 0 1   # inline comment
5 0 2 1
7 3 1 4
`
	tr, err := ParseTrace([]byte(src), 4)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Flows() != 4 {
		t.Fatalf("parsed %d flows, want 4", tr.Flows())
	}
	rep, err := NewTraceReplay(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Terminal 0: flow of 2 packets to 3 starting at 0, then 1 packet
	// to 2 from cycle 5.
	fired, dsts := drive(t, rep, 0, 10, 0 /* load ignored */, 1)
	wantCycles := []int64{0, 1, 5}
	wantDsts := []int{3, 3, 2}
	if len(fired) != len(wantCycles) {
		t.Fatalf("terminal 0 injected at %v, want %v", fired, wantCycles)
	}
	for i := range fired {
		if fired[i] != wantCycles[i] || dsts[i] != wantDsts[i] {
			t.Fatalf("injection %d = (cycle %d, dst %d), want (%d, %d)",
				i, fired[i], dsts[i], wantCycles[i], wantDsts[i])
		}
	}
	// A flow still draining slides later flows back but loses nothing.
	tr2, err := ParseTrace([]byte("0 0 1 3\n1 0 2 2\n"), 4)
	if err != nil {
		t.Fatal(err)
	}
	rep2, _ := NewTraceReplay(tr2, 4)
	fired2, dsts2 := drive(t, rep2, 0, 10, 0, 1)
	if len(fired2) != 5 || dsts2[3] != 2 || fired2[4] != 4 {
		t.Fatalf("back-to-back flows replayed as cycles %v dsts %v", fired2, dsts2)
	}
}

func TestParseTraceRejections(t *testing.T) {
	cases := map[string]string{
		"field count":       "1 2 3\n",
		"too many fields":   "1 2 3 4 5\n",
		"negative":          "-1 0 1 1\n",
		"non-numeric":       "x 0 1 1\n",
		"src range":         "0 9 1 1\n",
		"dst range":         "0 0 9 1\n",
		"zero count":        "0 0 1 0\n",
		"count cap":         "0 0 1 99999999\n",
		"cycle cap":         "99999999999999 0 1 1\n",
		"cycle regression":  "5 0 1 1\n3 0 2 1\n",
		"overflowing field": "123456789012345678901 0 1 1\n",
	}
	for name, src := range cases {
		_, err := ParseTrace([]byte(src), 4)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		var te *TraceError
		if !errors.Is(err, ErrBadTrace) || !errors.As(err, &te) {
			t.Errorf("%s: error %v is not a *TraceError wrapping ErrBadTrace", name, err)
		}
	}
	if _, err := ParseTrace([]byte("0 0 1 1\n"), 0); err == nil {
		t.Error("zero terminals accepted")
	}
}

func TestTraceReplayStateValidation(t *testing.T) {
	tr, _ := ParseTrace([]byte("0 0 1 3\n"), 2)
	rep, _ := NewTraceReplay(tr, 2)
	if err := rep.LoadState(0, []uint64{5, 0}); err == nil {
		t.Error("flow index past the end accepted")
	}
	if err := rep.LoadState(0, []uint64{1, 2}); err == nil {
		t.Error("remainder past the last flow accepted")
	}
	if err := rep.LoadState(0, []uint64{0, 9}); err == nil {
		t.Error("remainder over the flow count accepted")
	}
	if err := rep.LoadState(0, []uint64{0, 2}); err != nil {
		t.Errorf("valid mid-flow state rejected: %v", err)
	}
	if _, err := NewTraceReplay(tr, 5); err == nil {
		t.Error("terminal-count mismatch accepted")
	}
}
